package workload

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/oslinux"
	"repro/internal/sim"
)

// KVPort is the port database traffic targets.
const KVPort = 6379

// KVConfig sizes the key-value database container of Fig. 3.
type KVConfig struct {
	// GetCPUMI / PutCPUMI are the per-operation compute costs.
	GetCPUMI hw.MI // default 2
	PutCPUMI hw.MI // default 4
	// ValueBytes is the stored value size. Default 4 KiB.
	ValueBytes int64
	// CacheBytes of hot data are served from RAM; beyond that a get pays
	// an SD-card read. Default 8 MiB.
	CacheBytes int64
}

func (c *KVConfig) fillDefaults() {
	if c.GetCPUMI <= 0 {
		c.GetCPUMI = 2
	}
	if c.PutCPUMI <= 0 {
		c.PutCPUMI = 4
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 4 * hw.KiB
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 8 * hw.MiB
	}
}

// KVStore is the database server running in a container.
type KVStore struct {
	Endpoint Endpoint
	Config   KVConfig
	fabric   *Fabric

	keys     map[string]struct{}
	hotBytes int64
	// OpLatency records per-op latency in milliseconds.
	//
	// Deprecated: direct field access is the pre-registry shim; new code
	// should reach the instrument through PublishMetrics' registry.
	OpLatency metrics.Histogram // ms
	Gets      uint64
	Puts      uint64
	Misses    uint64
	Errors    uint64
}

// PublishMetrics files the store's embedded instruments into reg under
// the prefix — the registrable path to the unified observability
// registry (reg.Publish bridges it into internal/obs for scraping).
func (s *KVStore) PublishMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterHistogram(prefix+"op_latency_ms", &s.OpLatency)
}

// NewKVStore attaches a database to a running container.
func NewKVStore(fabric *Fabric, ep Endpoint, cfg KVConfig) (*KVStore, error) {
	if err := ep.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	return &KVStore{
		Endpoint: ep,
		Config:   cfg,
		fabric:   fabric,
		keys:     make(map[string]struct{}),
	}, nil
}

// Put stores a value for key on behalf of a client host: CPU, an SD
// write, then an acknowledgement flow back.
func (s *KVStore) Put(clientHost netsim.NodeID, key string, onDone func(error)) {
	t0 := s.fabric.Engine.Now()
	_, err := s.Endpoint.Suite.Exec(s.Endpoint.Container, oslinux.TaskSpec{
		WorkMI: s.Config.PutCPUMI,
		Label:  s.Endpoint.Container + "/put",
		OnDone: func() {
			k := s.Endpoint.Suite.Kernel()
			k.StorageWrite(s.Config.ValueBytes, func() {
				s.keys[key] = struct{}{}
				if s.hotBytes < s.Config.CacheBytes {
					s.hotBytes += s.Config.ValueBytes
				}
				if err := s.fabric.Send(s.Endpoint.Host, clientHost, 128, KVPort, func(serr error) {
					s.finish(t0, &s.Puts, serr, onDone)
				}); err != nil {
					s.Errors++
					onDone(err)
				}
			})
		},
	})
	if err != nil {
		s.Errors++
		onDone(fmt.Errorf("workload: kv put: %w", err))
	}
}

// Get fetches a value for a client host: CPU, an SD read on a cache
// miss, then the value flow back. Missing keys still cost the lookup.
func (s *KVStore) Get(clientHost netsim.NodeID, key string, onDone func(error)) {
	t0 := s.fabric.Engine.Now()
	_, err := s.Endpoint.Suite.Exec(s.Endpoint.Container, oslinux.TaskSpec{
		WorkMI: s.Config.GetCPUMI,
		Label:  s.Endpoint.Container + "/get",
		OnDone: func() {
			_, present := s.keys[key]
			respond := func() {
				size := s.Config.ValueBytes
				if !present {
					s.Misses++
					size = 64 // not-found response
				}
				if err := s.fabric.Send(s.Endpoint.Host, clientHost, size, KVPort, func(serr error) {
					s.finish(t0, &s.Gets, serr, onDone)
				}); err != nil {
					s.Errors++
					onDone(err)
				}
			}
			// Cold data pays the SD read.
			if present && s.hotBytes >= s.Config.CacheBytes {
				s.Endpoint.Suite.Kernel().StorageRead(s.Config.ValueBytes, respond)
			} else {
				respond()
			}
		},
	})
	if err != nil {
		s.Errors++
		onDone(fmt.Errorf("workload: kv get: %w", err))
	}
}

func (s *KVStore) finish(t0 sim.Time, counter *uint64, err error, onDone func(error)) {
	if err != nil {
		s.Errors++
		onDone(err)
		return
	}
	*counter++
	s.OpLatency.Observe(s.fabric.Engine.Now().Sub(t0).Seconds() * 1000)
	onDone(nil)
}

// Keys returns the number of stored keys.
func (s *KVStore) Keys() int { return len(s.keys) }

// KVLoadGenConfig drives an open-loop client population against a store.
type KVLoadGenConfig struct {
	// RatePerSecond is the mean Poisson op rate. Must be positive.
	RatePerSecond float64
	// GetFraction of operations are reads (default 0.9, the usual
	// read-heavy mix).
	GetFraction float64
	// KeySpace is the number of distinct keys (default 100).
	KeySpace int
	// Duration bounds generation; zero runs until Stop.
	Duration time.Duration
}

func (c *KVLoadGenConfig) fillDefaults() {
	if c.GetFraction <= 0 || c.GetFraction > 1 {
		c.GetFraction = 0.9
	}
	if c.KeySpace <= 0 {
		c.KeySpace = 100
	}
}

// KVLoadGen fires a get/put mix at a store from client hosts.
type KVLoadGen struct {
	fabric  *Fabric
	store   *KVStore
	clients []netsim.NodeID
	cfg     KVLoadGenConfig

	Issued    uint64
	Completed uint64
	Failed    uint64

	stopped bool
	started sim.Time
	nextCli int
}

// NewKVLoadGen builds a generator against one store.
func NewKVLoadGen(fabric *Fabric, store *KVStore, clients []netsim.NodeID, cfg KVLoadGenConfig) (*KVLoadGen, error) {
	if cfg.RatePerSecond <= 0 {
		return nil, fmt.Errorf("workload: kv rate must be positive")
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("workload: kv load needs clients")
	}
	cfg.fillDefaults()
	return &KVLoadGen{fabric: fabric, store: store, clients: clients, cfg: cfg}, nil
}

// Start begins issuing operations.
func (g *KVLoadGen) Start() {
	g.started = g.fabric.Engine.Now()
	g.next()
}

// Stop ceases new arrivals.
func (g *KVLoadGen) Stop() { g.stopped = true }

func (g *KVLoadGen) next() {
	if g.stopped {
		return
	}
	gap := time.Duration(g.fabric.Engine.Rand().ExpFloat64() / g.cfg.RatePerSecond * float64(time.Second))
	g.fabric.Engine.Schedule(gap, func() {
		if g.stopped {
			return
		}
		if g.cfg.Duration > 0 && g.fabric.Engine.Now().Sub(g.started) >= g.cfg.Duration {
			g.stopped = true
			return
		}
		g.fire()
		g.next()
	})
}

func (g *KVLoadGen) fire() {
	rng := g.fabric.Engine.Rand()
	client := g.clients[g.nextCli%len(g.clients)]
	g.nextCli++
	key := fmt.Sprintf("key-%04d", rng.Intn(g.cfg.KeySpace))
	g.Issued++
	done := func(err error) {
		if err != nil {
			g.Failed++
		} else {
			g.Completed++
		}
	}
	if rng.Float64() < g.cfg.GetFraction {
		g.store.Get(client, key, done)
	} else {
		g.store.Put(client, key, done)
	}
}
