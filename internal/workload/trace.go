package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TraceEvent is one recorded transfer: who sent how much to whom, when.
// The PiCloud's core pitch is that "as a development environment, it
// permits reproduction of actual traffic patterns with realistic Cloud
// applications" — a Recorder captures the pattern a workload produced,
// and a Replayer reproduces it against any cloud/fabric/policy.
type TraceEvent struct {
	AtNanos int64  `json:"at_ns"` // virtual time offset from recorder start
	Src     string `json:"src"`
	Dst     string `json:"dst"`
	Bytes   int64  `json:"bytes"`
	Port    uint16 `json:"port"`
}

// Trace is an ordered list of transfers.
type Trace struct {
	Events []TraceEvent `json:"events"`
}

// Duration returns the span from the first to the last event.
func (t *Trace) Duration() time.Duration {
	if len(t.Events) == 0 {
		return 0
	}
	return time.Duration(t.Events[len(t.Events)-1].AtNanos - t.Events[0].AtNanos)
}

// TotalBytes sums the transfer volumes.
func (t *Trace) TotalBytes() int64 {
	var total int64
	for _, e := range t.Events {
		total += e.Bytes
	}
	return total
}

// WriteTo serialises the trace as JSON lines (one event per line).
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	enc := json.NewEncoder(bw)
	for _, e := range t.Events {
		if err := enc.Encode(e); err != nil {
			return n, fmt.Errorf("workload: encoding trace: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadTrace parses a JSON-lines trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	dec := json.NewDecoder(r)
	for {
		var e TraceEvent
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("workload: decoding trace: %w", err)
		}
		t.Events = append(t.Events, e)
	}
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].AtNanos < t.Events[j].AtNanos })
	return t, nil
}

// Recorder captures every Send issued through a Fabric. Attach with
// NewRecordingFabric; the wrapped fabric keeps working normally.
type Recorder struct {
	trace Trace
	base  sim.Time
}

// Trace returns a copy of what has been captured so far.
func (r *Recorder) Trace() *Trace {
	cp := &Trace{Events: append([]TraceEvent(nil), r.trace.Events...)}
	return cp
}

// RecordingFabric wraps a Fabric, teeing every transfer into a Recorder.
type RecordingFabric struct {
	*Fabric
	rec *Recorder
}

// NewRecordingFabric starts capturing at the current virtual time.
func NewRecordingFabric(f *Fabric) (*RecordingFabric, *Recorder) {
	rec := &Recorder{base: f.Engine.Now()}
	return &RecordingFabric{Fabric: f, rec: rec}, rec
}

// Send records the transfer then delegates.
func (rf *RecordingFabric) Send(src, dst netsim.NodeID, bytes int64, port uint16, onDone func(error)) error {
	rf.rec.trace.Events = append(rf.rec.trace.Events, TraceEvent{
		AtNanos: int64(rf.Engine.Now().Sub(rf.rec.base)),
		Src:     string(src),
		Dst:     string(dst),
		Bytes:   bytes,
		Port:    port,
	})
	return rf.Fabric.Send(src, dst, bytes, port, onDone)
}

// ReplayReport summarises a finished replay.
type ReplayReport struct {
	Events    int
	Failed    int
	Bytes     int64
	Makespan  time.Duration // first event scheduled → last flow done
	MeanFCTms float64
}

// Replay schedules every trace event at its recorded offset against the
// fabric and invokes onDone with the report once all transfers finish.
// Host names in the trace must exist in the target cloud (replaying a
// 4×14 trace onto a 4×14 cloud of any fabric works by construction).
func Replay(f *Fabric, t *Trace, onDone func(ReplayReport)) error {
	if len(t.Events) == 0 {
		return fmt.Errorf("workload: empty trace")
	}
	start := f.Engine.Now()
	base := t.Events[0].AtNanos
	remaining := len(t.Events)
	rep := ReplayReport{Events: len(t.Events)}
	var fctSum time.Duration
	finishOne := func(began sim.Time, err error) {
		if err != nil {
			rep.Failed++
		} else {
			fctSum += f.Engine.Now().Sub(began)
		}
		remaining--
		if remaining == 0 {
			rep.Makespan = f.Engine.Now().Sub(start)
			done := rep.Events - rep.Failed
			if done > 0 {
				rep.MeanFCTms = fctSum.Seconds() * 1000 / float64(done)
			}
			if onDone != nil {
				onDone(rep)
			}
		}
	}
	for _, e := range t.Events {
		e := e
		rep.Bytes += e.Bytes
		offset := time.Duration(e.AtNanos - base)
		f.Engine.Schedule(offset, func() {
			began := f.Engine.Now()
			err := f.Send(netsim.NodeID(e.Src), netsim.NodeID(e.Dst), e.Bytes, e.Port, func(serr error) {
				finishOne(began, serr)
			})
			if err != nil {
				finishOne(began, err)
			}
		})
	}
	return nil
}
