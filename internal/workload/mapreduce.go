package workload

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/oslinux"
	"repro/internal/sim"
)

// ShufflePort is the port MapReduce shuffle traffic targets.
const ShufflePort = 7337

// MRJob describes a Hadoop-style batch job: map tasks reading input
// splits from SD cards, an all-to-all shuffle over the fabric, then
// reduce tasks writing output.
type MRJob struct {
	Name string
	// Maps and Reduces are the task counts. Both must be positive.
	Maps    int
	Reduces int
	// InputSplitBytes is the data each map reads. Default 16 MiB.
	InputSplitBytes int64
	// MapCPUMI / ReduceCPUMI are per-task compute costs. Defaults: 400 /
	// 300 MI.
	MapCPUMI    hw.MI
	ReduceCPUMI hw.MI
	// ShuffleRatio scales map output: shuffle bytes per map =
	// InputSplitBytes × ratio. Default 0.5.
	ShuffleRatio float64
}

func (j *MRJob) fillDefaults() {
	if j.InputSplitBytes <= 0 {
		j.InputSplitBytes = 16 * hw.MiB
	}
	if j.MapCPUMI <= 0 {
		j.MapCPUMI = 400
	}
	if j.ReduceCPUMI <= 0 {
		j.ReduceCPUMI = 300
	}
	if j.ShuffleRatio <= 0 {
		j.ShuffleRatio = 0.5
	}
}

// validate rejects impossible jobs.
func (j *MRJob) validate() error {
	if j.Maps <= 0 || j.Reduces <= 0 {
		return fmt.Errorf("workload: job %q needs positive map/reduce counts", j.Name)
	}
	return nil
}

// MRReport summarises a finished job.
type MRReport struct {
	Job           string
	Makespan      time.Duration
	MapPhase      time.Duration
	ShufflePhase  time.Duration
	ReducePhase   time.Duration
	ShuffledBytes int64
	TaskFailures  int
}

// MRRunner schedules jobs over a pool of worker containers.
type MRRunner struct {
	fabric  *Fabric
	workers []Endpoint
}

// NewMRRunner builds a runner over worker containers (the "hadoop"
// containers of Fig. 3).
func NewMRRunner(fabric *Fabric, workers []Endpoint) (*MRRunner, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("workload: MapReduce needs workers")
	}
	for _, w := range workers {
		if err := w.Validate(); err != nil {
			return nil, err
		}
	}
	return &MRRunner{fabric: fabric, workers: workers}, nil
}

// mrRun tracks one executing job.
type mrRun struct {
	r         *MRRunner
	job       MRJob
	onDone    func(MRReport)
	started   sim.Time
	mapsLeft  int
	mapEnd    sim.Time
	flowsLeft int
	shufEnd   sim.Time
	redsLeft  int
	failures  int
	shuffled  int64
}

// Run executes a job asynchronously; onDone receives the report.
// Map task i runs on worker i mod len(workers); reduce task j on worker
// j mod len(workers) — round-robin like a Hadoop scheduler with uniform
// slots.
func (r *MRRunner) Run(job MRJob, onDone func(MRReport)) error {
	if err := job.validate(); err != nil {
		return err
	}
	job.fillDefaults()
	run := &mrRun{
		r:        r,
		job:      job,
		onDone:   onDone,
		started:  r.fabric.Engine.Now(),
		mapsLeft: job.Maps,
	}
	for i := 0; i < job.Maps; i++ {
		run.startMap(i)
	}
	return nil
}

func (run *mrRun) worker(i int) Endpoint { return run.r.workers[i%len(run.r.workers)] }

// startMap reads the split then computes.
func (run *mrRun) startMap(i int) {
	w := run.worker(i)
	w.Suite.Kernel().StorageRead(run.job.InputSplitBytes, func() {
		_, err := w.Suite.Exec(w.Container, oslinux.TaskSpec{
			WorkMI: run.job.MapCPUMI,
			Label:  fmt.Sprintf("%s/map-%d", run.job.Name, i),
			OnDone: func() { run.mapDone(i) },
		})
		if err != nil {
			run.failures++
			run.mapDone(i)
		}
	})
}

// mapDone advances to shuffle when the last map finishes.
func (run *mrRun) mapDone(i int) {
	run.mapsLeft--
	if run.mapsLeft > 0 {
		return
	}
	run.mapEnd = run.r.fabric.Engine.Now()
	run.startShuffle()
}

// startShuffle moves every map's partitioned output to every reducer.
func (run *mrRun) startShuffle() {
	job := run.job
	perPair := int64(float64(job.InputSplitBytes) * job.ShuffleRatio / float64(job.Reduces))
	if perPair <= 0 {
		perPair = 1
	}
	type pair struct{ m, r int }
	var pairs []pair
	for m := 0; m < job.Maps; m++ {
		for red := 0; red < job.Reduces; red++ {
			src, dst := run.worker(m), run.worker(red)
			if src.Host == dst.Host {
				// Local shuffle: no network flow.
				run.shuffled += perPair
				continue
			}
			pairs = append(pairs, pair{m, red})
		}
	}
	if len(pairs) == 0 {
		run.shufEnd = run.r.fabric.Engine.Now()
		run.startReduce()
		return
	}
	run.flowsLeft = len(pairs)
	for _, p := range pairs {
		src, dst := run.worker(p.m), run.worker(p.r)
		err := run.r.fabric.Send(src.Host, dst.Host, perPair, ShufflePort, func(err error) {
			if err != nil {
				run.failures++
			} else {
				run.shuffled += perPair
			}
			run.flowsLeft--
			if run.flowsLeft == 0 {
				run.shufEnd = run.r.fabric.Engine.Now()
				run.startReduce()
			}
		})
		if err != nil {
			run.failures++
			run.flowsLeft--
			if run.flowsLeft == 0 {
				run.shufEnd = run.r.fabric.Engine.Now()
				run.startReduce()
			}
		}
	}
}

// startReduce runs reducers then writes output.
func (run *mrRun) startReduce() {
	run.redsLeft = run.job.Reduces
	for i := 0; i < run.job.Reduces; i++ {
		w := run.worker(i)
		_, err := w.Suite.Exec(w.Container, oslinux.TaskSpec{
			WorkMI: run.job.ReduceCPUMI,
			Label:  fmt.Sprintf("%s/reduce-%d", run.job.Name, i),
			OnDone: func() {
				w.Suite.Kernel().StorageWrite(run.job.InputSplitBytes/4, func() {
					run.reduceDone()
				})
			},
		})
		if err != nil {
			run.failures++
			run.reduceDone()
		}
	}
}

func (run *mrRun) reduceDone() {
	run.redsLeft--
	if run.redsLeft > 0 {
		return
	}
	now := run.r.fabric.Engine.Now()
	if run.onDone != nil {
		run.onDone(MRReport{
			Job:           run.job.Name,
			Makespan:      now.Sub(run.started),
			MapPhase:      run.mapEnd.Sub(run.started),
			ShufflePhase:  run.shufEnd.Sub(run.mapEnd),
			ReducePhase:   now.Sub(run.shufEnd),
			ShuffledBytes: run.shuffled,
			TaskFailures:  run.failures,
		})
	}
}
