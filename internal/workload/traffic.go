package workload

import (
	"fmt"
	"math"
	"time"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// BackgroundPort is the port background traffic targets.
const BackgroundPort = 9999

// OnOffConfig parameterises heavy-tailed ON/OFF background sources — the
// "constantly changing, generally unpredictable" DC traffic of Section I.
// ON and OFF period lengths are Pareto-distributed, which produces the
// burstiness and long-range dependence measured in real facilities.
type OnOffConfig struct {
	// Sources is the number of independent host pairs generating.
	Sources int
	// MeanOnSeconds / MeanOffSeconds set the period means. Defaults 2/8.
	MeanOnSeconds  float64
	MeanOffSeconds float64
	// ParetoAlpha is the tail index (1 < α ≤ 2 gives heavy tails).
	// Default 1.5.
	ParetoAlpha float64
	// FlowBytes is the volume sent per ON burst. Default 4 MiB.
	FlowBytes int64
}

func (c *OnOffConfig) fillDefaults() {
	if c.MeanOnSeconds <= 0 {
		c.MeanOnSeconds = 2
	}
	if c.MeanOffSeconds <= 0 {
		c.MeanOffSeconds = 8
	}
	if c.ParetoAlpha <= 1 {
		c.ParetoAlpha = 1.5
	}
	if c.FlowBytes <= 0 {
		c.FlowBytes = 4 * hw.MiB
	}
}

// OnOffGenerator drives ON/OFF sources between random host pairs.
type OnOffGenerator struct {
	fabric *Fabric
	hosts  []netsim.NodeID
	cfg    OnOffConfig

	FlowsStarted uint64
	FlowsDone    uint64
	FlowsFailed  uint64
	stopped      bool
}

// NewOnOffGenerator builds a generator over the given hosts.
func NewOnOffGenerator(fabric *Fabric, hosts []netsim.NodeID, cfg OnOffConfig) (*OnOffGenerator, error) {
	if len(hosts) < 2 {
		return nil, fmt.Errorf("workload: on/off traffic needs ≥2 hosts")
	}
	if cfg.Sources <= 0 {
		return nil, fmt.Errorf("workload: on/off traffic needs ≥1 source")
	}
	cfg.fillDefaults()
	return &OnOffGenerator{fabric: fabric, hosts: append([]netsim.NodeID(nil), hosts...), cfg: cfg}, nil
}

// pareto draws a Pareto-distributed value with the given mean and tail
// index alpha: xm = mean·(α-1)/α.
func (g *OnOffGenerator) pareto(mean float64) float64 {
	alpha := g.cfg.ParetoAlpha
	xm := mean * (alpha - 1) / alpha
	u := g.fabric.Engine.Rand().Float64()
	if u <= 0 {
		u = 1e-12
	}
	v := xm / math.Pow(u, 1/alpha)
	// Clamp pathological tail draws so a single source cannot stall the
	// simulation for hours.
	if v > mean*100 {
		v = mean * 100
	}
	return v
}

// Start launches the sources.
func (g *OnOffGenerator) Start() {
	for i := 0; i < g.cfg.Sources; i++ {
		g.scheduleOff(i)
	}
}

// Stop ends generation (in-flight bursts finish).
func (g *OnOffGenerator) Stop() { g.stopped = true }

func (g *OnOffGenerator) scheduleOff(src int) {
	if g.stopped {
		return
	}
	off := g.pareto(g.cfg.MeanOffSeconds)
	g.fabric.Engine.Schedule(time.Duration(off*float64(time.Second)), func() { g.burst(src) })
}

// burst sends one ON period's volume between a random pair.
func (g *OnOffGenerator) burst(src int) {
	if g.stopped {
		return
	}
	rng := g.fabric.Engine.Rand()
	a := g.hosts[rng.Intn(len(g.hosts))]
	b := g.hosts[rng.Intn(len(g.hosts))]
	for b == a {
		b = g.hosts[rng.Intn(len(g.hosts))]
	}
	// Volume scales with the ON period draw.
	on := g.pareto(g.cfg.MeanOnSeconds)
	bytes := int64(float64(g.cfg.FlowBytes) * on / g.cfg.MeanOnSeconds)
	if bytes <= 0 {
		bytes = 1
	}
	g.FlowsStarted++
	err := g.fabric.Send(a, b, bytes, BackgroundPort, func(err error) {
		if err != nil {
			g.FlowsFailed++
		} else {
			g.FlowsDone++
		}
	})
	if err != nil {
		g.FlowsFailed++
	}
	g.scheduleOff(src)
}

// GravityConfig parameterises a time-varying gravity traffic matrix:
// every epoch, rack masses are re-drawn and pairwise demand follows
// mass(i)·mass(j) — the traffic "dynamism [that] is difficult to model"
// in simulators.
type GravityConfig struct {
	// EpochSeconds is how often the matrix re-rolls. Default 30.
	EpochSeconds float64
	// FlowsPerEpoch is the number of transfers launched each epoch.
	// Default 20.
	FlowsPerEpoch int
	// FlowBytes is the mean transfer size. Default 2 MiB.
	FlowBytes int64
}

func (c *GravityConfig) fillDefaults() {
	if c.EpochSeconds <= 0 {
		c.EpochSeconds = 30
	}
	if c.FlowsPerEpoch <= 0 {
		c.FlowsPerEpoch = 20
	}
	if c.FlowBytes <= 0 {
		c.FlowBytes = 2 * hw.MiB
	}
}

// GravityGenerator drives the epoch-based gravity matrix.
type GravityGenerator struct {
	fabric *Fabric
	racks  [][]netsim.NodeID
	cfg    GravityConfig

	// EpochThroughput records bytes launched per epoch; its dispersion
	// is the unpredictability measure of experiment R5.
	//
	// Deprecated: direct field access is the pre-registry shim; new code
	// should reach the instrument through PublishMetrics' registry.
	EpochThroughput metrics.TimeSeries
	Epochs          uint64
	stopped         bool
}

// PublishMetrics files the generator's embedded instruments into reg
// under the prefix — the registrable path to the unified observability
// registry (reg.Publish bridges it into internal/obs for scraping).
func (g *GravityGenerator) PublishMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterSeries(prefix+"epoch_throughput_bytes", &g.EpochThroughput)
}

// NewGravityGenerator builds a generator over the topology's racks.
func NewGravityGenerator(fabric *Fabric, racks [][]netsim.NodeID, cfg GravityConfig) (*GravityGenerator, error) {
	if len(racks) < 2 {
		return nil, fmt.Errorf("workload: gravity traffic needs ≥2 racks")
	}
	cfg.fillDefaults()
	return &GravityGenerator{fabric: fabric, racks: racks, cfg: cfg}, nil
}

// Start launches epochs until Stop.
func (g *GravityGenerator) Start() { g.epoch() }

// Stop ends generation.
func (g *GravityGenerator) Stop() { g.stopped = true }

func (g *GravityGenerator) epoch() {
	if g.stopped {
		return
	}
	rng := g.fabric.Engine.Rand()
	// Re-roll rack masses.
	masses := make([]float64, len(g.racks))
	total := 0.0
	for i := range masses {
		masses[i] = rng.Float64() + 0.05
		total += masses[i]
	}
	var launched int64
	for i := 0; i < g.cfg.FlowsPerEpoch; i++ {
		srcRack := g.sampleRack(masses, total)
		dstRack := g.sampleRack(masses, total)
		src := g.racks[srcRack][rng.Intn(len(g.racks[srcRack]))]
		dst := g.racks[dstRack][rng.Intn(len(g.racks[dstRack]))]
		if src == dst {
			continue
		}
		// Exponential size around the mean.
		bytes := int64(rng.ExpFloat64() * float64(g.cfg.FlowBytes))
		if bytes <= 0 {
			bytes = 1
		}
		if err := g.fabric.Send(src, dst, bytes, BackgroundPort, nil); err == nil {
			launched += bytes
		}
	}
	g.Epochs++
	g.EpochThroughput.Record(g.fabric.Engine.Now(), float64(launched))
	g.fabric.Engine.Schedule(time.Duration(g.cfg.EpochSeconds*float64(time.Second)), g.epoch)
}

// sampleRack draws a rack index proportional to mass.
func (g *GravityGenerator) sampleRack(masses []float64, total float64) int {
	x := g.fabric.Engine.Rand().Float64() * total
	for i, m := range masses {
		x -= m
		if x <= 0 {
			return i
		}
	}
	return len(masses) - 1
}

// CoV returns the coefficient of variation of epoch throughput — the
// headline unpredictability statistic.
func (g *GravityGenerator) CoV() float64 {
	samples := g.EpochThroughput.Samples()
	if len(samples) < 2 {
		return 0
	}
	mean := 0.0
	for _, s := range samples {
		mean += s.Value
	}
	mean /= float64(len(samples))
	if mean == 0 {
		return 0
	}
	varsum := 0.0
	for _, s := range samples {
		d := s.Value - mean
		varsum += d * d
	}
	return math.Sqrt(varsum/float64(len(samples)-1)) / mean
}
