package workload

import (
	"fmt"
	"math"
	"time"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/oslinux"
	"repro/internal/sim"
)

// HTTPPort is the port web traffic targets.
const HTTPPort = 80

// WebServerConfig sizes the per-request cost of the lightweight httpd.
type WebServerConfig struct {
	// CPUPerRequestMI is the compute cost of one request (template
	// rendering, headers). Default 5 MI (~6 ms alone on a Pi).
	CPUPerRequestMI hw.MI
	// ResponseBytes is the payload returned. Default 32 KiB.
	ResponseBytes int64
}

func (c *WebServerConfig) fillDefaults() {
	if c.CPUPerRequestMI <= 0 {
		c.CPUPerRequestMI = 5
	}
	if c.ResponseBytes <= 0 {
		c.ResponseBytes = 32 * hw.KiB
	}
}

// WebServer is a lightweight httpd running in one container.
type WebServer struct {
	Endpoint Endpoint
	Config   WebServerConfig
	fabric   *Fabric
	served   uint64
	rejected uint64
}

// NewWebServer attaches an httpd to a running container.
func NewWebServer(fabric *Fabric, ep Endpoint, cfg WebServerConfig) (*WebServer, error) {
	if err := ep.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	return &WebServer{Endpoint: ep, Config: cfg, fabric: fabric}, nil
}

// Served returns the number of completed requests.
func (w *WebServer) Served() uint64 { return w.served }

// Rejected returns requests that failed (container stopped, OOM, network).
func (w *WebServer) Rejected() uint64 { return w.rejected }

// HandleRequest processes one request from a client host: CPU work in
// the container, then the response transfer. onDone receives the error,
// if any.
func (w *WebServer) HandleRequest(clientHost netsim.NodeID, onDone func(error)) {
	_, err := w.Endpoint.Suite.Exec(w.Endpoint.Container, oslinux.TaskSpec{
		WorkMI: w.Config.CPUPerRequestMI,
		Label:  w.Endpoint.Container + "/req",
		OnDone: func() {
			if err := w.fabric.Send(w.Endpoint.Host, clientHost, w.Config.ResponseBytes, HTTPPort, func(serr error) {
				if serr != nil {
					w.rejected++
					onDone(serr)
					return
				}
				w.served++
				onDone(nil)
			}); err != nil {
				w.rejected++
				onDone(err)
			}
		},
	})
	if err != nil {
		w.rejected++
		onDone(fmt.Errorf("workload: exec: %w", err))
	}
}

// WebFarm load-balances requests round-robin over servers — the VIP in
// front of a replicated httpd tier.
type WebFarm struct {
	servers []*WebServer
	next    int
}

// NewWebFarm groups servers behind one entry point.
func NewWebFarm(servers ...*WebServer) (*WebFarm, error) {
	if len(servers) == 0 {
		return nil, ErrNoServers
	}
	return &WebFarm{servers: servers}, nil
}

// Pick returns the next backend (round-robin).
func (f *WebFarm) Pick() *WebServer {
	s := f.servers[f.next%len(f.servers)]
	f.next++
	return s
}

// Servers returns the backends.
func (f *WebFarm) Servers() []*WebServer { return append([]*WebServer(nil), f.servers...) }

// LoadGenConfig drives an open-loop Poisson client population.
type LoadGenConfig struct {
	// RatePerSecond is the mean arrival rate. Must be positive.
	RatePerSecond float64
	// Duration bounds the generation window; zero runs until Stop.
	Duration time.Duration
}

// LoadGen fires requests at a farm and records latency.
type LoadGen struct {
	fabric  *Fabric
	farm    *WebFarm
	clients []Endpoint
	cfg     LoadGenConfig

	// Latency records request latency in milliseconds.
	//
	// Deprecated: direct field access is the pre-registry shim; new code
	// should reach the instrument through PublishMetrics' registry.
	Latency   metrics.Histogram
	Issued    uint64
	Completed uint64
	Failed    uint64

	stopped bool
	started sim.Time
	nextCli int
}

// PublishMetrics files the generator's embedded instruments into reg
// under the prefix — the registrable path to the unified observability
// registry (reg.Publish bridges it into internal/obs for scraping).
func (g *LoadGen) PublishMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterHistogram(prefix+"request_latency_ms", &g.Latency)
}

// NewLoadGen builds a generator: each request originates at one of the
// client endpoints (round-robin) and lands on the farm's next backend.
func NewLoadGen(fabric *Fabric, farm *WebFarm, clients []Endpoint, cfg LoadGenConfig) (*LoadGen, error) {
	if cfg.RatePerSecond <= 0 || math.IsNaN(cfg.RatePerSecond) {
		return nil, fmt.Errorf("workload: rate must be positive, got %v", cfg.RatePerSecond)
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("workload: need at least one client endpoint")
	}
	for _, c := range clients {
		if c.Host == "" {
			return nil, fmt.Errorf("workload: client without host")
		}
	}
	return &LoadGen{fabric: fabric, farm: farm, clients: clients, cfg: cfg}, nil
}

// Start begins issuing requests.
func (g *LoadGen) Start() {
	g.started = g.fabric.Engine.Now()
	g.scheduleNext()
}

// Stop ceases new arrivals (in-flight requests finish).
func (g *LoadGen) Stop() { g.stopped = true }

// GoodputPerSecond returns completed requests per second of generation
// time so far.
func (g *LoadGen) GoodputPerSecond() float64 {
	el := g.fabric.Engine.Now().Sub(g.started).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(g.Completed) / el
}

func (g *LoadGen) scheduleNext() {
	if g.stopped {
		return
	}
	// Exponential inter-arrival (Poisson process).
	gap := time.Duration(g.fabric.Engine.Rand().ExpFloat64() / g.cfg.RatePerSecond * float64(time.Second))
	g.fabric.Engine.Schedule(gap, func() {
		if g.stopped {
			return
		}
		if g.cfg.Duration > 0 && g.fabric.Engine.Now().Sub(g.started) >= g.cfg.Duration {
			g.stopped = true
			return
		}
		g.fire()
		g.scheduleNext()
	})
}

func (g *LoadGen) fire() {
	client := g.clients[g.nextCli%len(g.clients)]
	g.nextCli++
	srv := g.farm.Pick()
	g.Issued++
	t0 := g.fabric.Engine.Now()
	srv.HandleRequest(client.Host, func(err error) {
		if err != nil {
			g.Failed++
			return
		}
		g.Completed++
		g.Latency.Observe(g.fabric.Engine.Now().Sub(t0).Seconds() * 1000) // ms
	})
}
