package pimaster_test

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/migration"
	"repro/internal/pimaster"
	"repro/internal/placement"
)

func newCloud(t *testing.T, cfg core.Config) *core.Cloud {
	t.Helper()
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := pimaster.New(pimaster.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestRegisterNodeValidation(t *testing.T) {
	c := newCloud(t, core.Config{Racks: 1, HostsPerRack: 1})
	if err := c.Master.RegisterNode(nil, 0); err == nil {
		t.Fatal("nil ref accepted")
	}
	if err := c.Master.RegisterNode(&pimaster.NodeRef{}, 0); err == nil {
		t.Fatal("incomplete ref accepted")
	}
	// Duplicate registration of an existing node.
	n := c.Nodes()[0]
	err := c.Master.RegisterNode(&pimaster.NodeRef{Name: n.Name, Host: n.Host, Client: n.Client}, 0)
	if err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestSpawnValidation(t *testing.T) {
	c := newCloud(t, core.Config{Racks: 1, HostsPerRack: 2})
	cases := []struct {
		name string
		req  pimaster.SpawnVMRequest
	}{
		{"no name", pimaster.SpawnVMRequest{Image: "raspbian"}},
		{"no image", pimaster.SpawnVMRequest{Name: "x"}},
		{"bad image", pimaster.SpawnVMRequest{Name: "x", Image: "no-such"}},
		{"bad placer", pimaster.SpawnVMRequest{Name: "x", Image: "raspbian", Placer: "magic"}},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			if _, err := c.Master.SpawnVM(cse.req); err == nil {
				t.Fatalf("accepted %s", cse.name)
			}
		})
	}
	// A failed spawn must leak no lease or DNS record.
	leases := len(c.Master.DHCP().Leases())
	recs := c.Master.DNS().RecordCount()
	if _, err := c.Master.SpawnVM(pimaster.SpawnVMRequest{Name: "x", Image: "no-such"}); err == nil {
		t.Fatal("bad image accepted")
	}
	if got := len(c.Master.DHCP().Leases()); got != leases {
		t.Fatalf("leases leaked: %d → %d", leases, got)
	}
	if got := c.Master.DNS().RecordCount(); got != recs {
		t.Fatalf("dns leaked: %d → %d", recs, got)
	}
}

func TestClusterFullReturnsNoCapacity(t *testing.T) {
	c := newCloud(t, core.Config{Racks: 1, HostsPerRack: 1})
	for i := 0; i < 3; i++ {
		if _, err := c.Master.SpawnVM(pimaster.SpawnVMRequest{
			Name: "vm" + string(rune('a'+i)), Image: "raspbian",
		}); err != nil {
			t.Fatal(err)
		}
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.Master.SpawnVM(pimaster.SpawnVMRequest{Name: "vmz", Image: "raspbian"})
	if !errors.Is(err, placement.ErrNoCapacity) {
		t.Fatalf("4th VM on a 1-node cloud = %v, want ErrNoCapacity (3 comfortable per Pi)", err)
	}
}

func TestPerRequestPlacerOverride(t *testing.T) {
	c := newCloud(t, core.Config{Racks: 1, HostsPerRack: 3, Placer: placement.BestFit{}})
	a, err := c.Master.SpawnVM(pimaster.SpawnVMRequest{Name: "a", Image: "raspbian"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	// Override to worst-fit: lands on an empty node despite best-fit
	// default.
	b, err := c.Master.SpawnVM(pimaster.SpawnVMRequest{Name: "b", Image: "raspbian", Placer: "worst-fit"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Node == b.Node {
		t.Fatalf("worst-fit override ignored: both on %s", a.Node)
	}
}

func TestMigrateErrors(t *testing.T) {
	c := newCloud(t, core.Config{Racks: 2, HostsPerRack: 1})
	if err := c.Master.MigrateVM("ghost", pimaster.MigrateVMRequest{TargetNode: "x"}, nil); !errors.Is(err, pimaster.ErrNoSuchVM) {
		t.Fatalf("migrate missing vm = %v", err)
	}
	if _, err := c.Master.SpawnVM(pimaster.SpawnVMRequest{Name: "v", Image: "raspbian"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if err := c.Master.MigrateVM("v", pimaster.MigrateVMRequest{TargetNode: "ghost"}, nil); !errors.Is(err, pimaster.ErrNoSuchNode) {
		t.Fatalf("migrate to missing node = %v", err)
	}
}

func TestMigrateIPModeViaMaster(t *testing.T) {
	c := newCloud(t, core.Config{Racks: 2, HostsPerRack: 1})
	rec, err := c.Master.SpawnVM(pimaster.SpawnVMRequest{Name: "v", Image: "raspbian"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	var dstName string
	for _, n := range c.Nodes() {
		if n.Name != rec.Node {
			dstName = n.Name
		}
	}
	var rep migration.Report
	if err := c.Master.MigrateVM("v", pimaster.MigrateVMRequest{TargetNode: dstName, Routing: "ip"}, func(r migration.Report) { rep = r }); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if rep.Err != nil {
		t.Fatalf("migration failed: %v", rep.Err)
	}
	if rep.Mode != migration.RoutingIP {
		t.Fatalf("mode = %v, want ip-routed", rep.Mode)
	}
}

func TestPowerSummary(t *testing.T) {
	c := newCloud(t, core.Config{})
	p := c.Master.Power()
	if p.Nodes != 56 {
		t.Fatalf("nodes = %d", p.Nodes)
	}
	if !p.SocketOK {
		t.Fatal("idle PiCloud must fit one socket strip")
	}
	if p.TotalWatts <= 0 || p.TotalWatts > p.SocketLimitW {
		t.Fatalf("draw = %v (limit %v)", p.TotalWatts, p.SocketLimitW)
	}
}

func TestNodeFQDNRegistered(t *testing.T) {
	c := newCloud(t, core.Config{Racks: 2, HostsPerRack: 2})
	// All four nodes have A records under the PiCloud zone.
	for _, n := range c.Nodes() {
		fqdn := n.Name + ".picloud.dcs.gla.ac.uk."
		addrs, err := c.Master.DNS().LookupA(fqdn)
		if err != nil {
			t.Fatalf("node %s not in DNS: %v", n.Name, err)
		}
		if !strings.HasPrefix(addrs[0].String(), "10.") {
			t.Fatalf("node addr = %v", addrs)
		}
	}
}

func TestLeaseSweeper(t *testing.T) {
	c := newCloud(t, core.Config{Racks: 1, HostsPerRack: 2})
	c.Mu.Lock()
	stop := c.Master.StartLeaseSweeper(time.Minute)
	c.Mu.Unlock()
	// A dynamic container lease that expires (default 12h) gets swept.
	lease, err := c.Master.DHCP().Request("rack0", "02:1c:00:00:00:99")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunFor(13 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Master.DHCP().LeaseOf(lease.MAC); ok {
		t.Fatal("expired lease survived the sweeper")
	}
	// Node leases are static: they survive.
	if len(c.Master.DHCP().Leases()) != 2 {
		t.Fatalf("leases = %d, want the 2 static node leases", len(c.Master.DHCP().Leases()))
	}
	c.Mu.Lock()
	stop()
	c.Mu.Unlock()
}

// TestHTTPHandlers drives every pimaster endpoint over the wire,
// including the error paths.
func TestHTTPHandlers(t *testing.T) {
	c := newCloud(t, core.Config{Racks: 2, HostsPerRack: 2})
	base := c.ServeMaster()
	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	post := func(path, body string) (int, string) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(out)
	}

	// Node endpoints.
	if code, body := get("/api/v1/nodes/pi-r00-n00"); code != 200 || !strings.Contains(body, "raspberry-pi-model-b") {
		t.Fatalf("node get = %d %s", code, body)
	}
	if code, _ := get("/api/v1/nodes/ghost"); code != 404 {
		t.Fatalf("missing node = %d", code)
	}

	// VM lifecycle over HTTP.
	if code, body := post("/api/v1/vms", `{"name":"h1","image":"webserver"}`); code != 202 {
		t.Fatalf("spawn = %d %s", code, body)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if code, _ := post("/api/v1/vms", `{"name":"h1","image":"webserver"}`); code != 409 {
		t.Fatalf("duplicate spawn = %d", code)
	}
	if code, _ := post("/api/v1/vms", `{bad json`); code != 400 {
		t.Fatalf("bad json = %d", code)
	}
	if code, body := get("/api/v1/vms/h1"); code != 200 || !strings.Contains(body, "h1") {
		t.Fatalf("vm get = %d %s", code, body)
	}
	if code, _ := get("/api/v1/vms/ghost"); code != 404 {
		t.Fatalf("missing vm = %d", code)
	}

	// Migrate over HTTP.
	rec, err := c.Master.VM("h1")
	if err != nil {
		t.Fatal(err)
	}
	var target string
	for _, n := range c.Nodes() {
		if n.Name != rec.Node {
			target = n.Name
			break
		}
	}
	if code, body := post("/api/v1/vms/h1/migrate", `{"target_node":"`+target+`"}`); code != 202 {
		t.Fatalf("migrate = %d %s", code, body)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if code, _ := post("/api/v1/vms/h1/migrate", `{nope`); code != 400 {
		t.Fatalf("bad migrate json = %d", code)
	}
	if code, _ := post("/api/v1/vms/ghost/migrate", `{"target_node":"x"}`); code != 404 {
		t.Fatalf("migrate missing vm = %d", code)
	}

	// Service endpoints.
	if code, body := get("/api/v1/leases"); code != 200 || !strings.Contains(body, "b8:27:eb") {
		t.Fatalf("leases = %d %s", code, body)
	}
	if code, body := get("/api/v1/dns"); code != 200 || !strings.Contains(body, "picloud.dcs.gla.ac.uk") {
		t.Fatalf("dns = %d %.120s", code, body)
	}
	if code, body := get("/api/v1/images"); code != 200 || !strings.Contains(body, "webserver:latest") {
		t.Fatalf("images = %d %s", code, body)
	}
	if code, body := get("/api/v1/power"); code != 200 || !strings.Contains(body, "total_watts") {
		t.Fatalf("power = %d %s", code, body)
	}

	// DELETE via HTTP.
	req, err := http.NewRequest(http.MethodDelete, base+"/api/v1/vms/h1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
}

func TestSetPlacerSwitchesDefault(t *testing.T) {
	c := newCloud(t, core.Config{Racks: 1, HostsPerRack: 3})
	a, err := c.Master.SpawnVM(pimaster.SpawnVMRequest{Name: "a", Image: "raspbian"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	c.Master.SetPlacer(placement.WorstFit{})
	b, err := c.Master.SpawnVM(pimaster.SpawnVMRequest{Name: "b", Image: "raspbian"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Node == b.Node {
		t.Fatal("SetPlacer(WorstFit) had no effect")
	}
}

func TestImageOpsOverHTTP(t *testing.T) {
	c := newCloud(t, core.Config{Racks: 1, HostsPerRack: 1})
	base := c.ServeMaster()
	post := func(path, body string) (int, string) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(out)
	}
	// Patch: add a CVE-fix layer.
	code, body := post("/api/v1/images/webserver/latest/patch",
		`{"new_tag":"patched","layer_size_bytes":2097152,"layer_packages":["openssl"],"layer_note":"CVE fix"}`)
	if code != 201 || !strings.Contains(body, "webserver:patched") {
		t.Fatalf("patch = %d %s", code, body)
	}
	// Upgrade: replace the base.
	code, body = post("/api/v1/images/webserver/latest/upgrade",
		`{"new_tag":"jessie","layer_size_bytes":230686720,"layer_packages":["raspbian-core"],"layer_note":"jessie base"}`)
	if code != 201 || !strings.Contains(body, "webserver:jessie") {
		t.Fatalf("upgrade = %d %s", code, body)
	}
	// Spawn: stamp a tenant image.
	code, body = post("/api/v1/images/webserver/latest/spawn",
		`{"new_name":"tenant1-web","new_tag":"v1"}`)
	if code != 201 || !strings.Contains(body, "tenant1-web:v1") {
		t.Fatalf("spawn = %d %s", code, body)
	}
	// The spawned image is now deployable through the normal path.
	if _, err := c.Master.SpawnVM(pimaster.SpawnVMRequest{Name: "t1", Image: "tenant1-web:v1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	// Error paths.
	if code, _ := post("/api/v1/images/ghost/latest/patch", `{"new_tag":"x","layer_size_bytes":1}`); code != 404 {
		t.Fatalf("patch missing image = %d", code)
	}
	if code, _ := post("/api/v1/images/webserver/latest/frob", `{}`); code != 400 {
		t.Fatalf("unknown op = %d", code)
	}
	if code, _ := post("/api/v1/images/webserver/latest/patch", `{bad`); code != 400 {
		t.Fatalf("bad json = %d", code)
	}
	if code, _ := post("/api/v1/images/webserver/latest/spawn", `{"new_name":"tenant1-web","new_tag":"v1"}`); code != 409 {
		t.Fatalf("duplicate spawn = %d", code)
	}
}
