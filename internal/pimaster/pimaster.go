// Package pimaster implements the PiCloud head node: the inventory of
// node daemons, placement-driven VM spawning, the DHCP and DNS services,
// image hosting, the migration driver and the outward-facing web control
// panel of Fig. 4. Per the paper, "an outward-facing webserver on
// pimaster provides a web-based control panel to users and
// administrators ... [which] interacts with the local daemons, and
// controls workloads running on the Pi devices using RESTful interfaces".
//
// Locking: pimaster's own registries are guarded by its internal mutex;
// the simulated cloud is guarded by the cloud-wide mutex shared with the
// node daemons and the engine driver. pimaster never holds its own mutex
// while acquiring the cloud mutex, and talks to node daemons over real
// HTTP (each daemon request locks the cloud itself).
package pimaster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/netip"
	"sort"
	"sync"

	"repro/internal/dhcp"
	"repro/internal/dns"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/image"
	"repro/internal/lxc"
	"repro/internal/migration"
	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/placement"
	"repro/internal/restapi"
	"repro/internal/sdn"
	"repro/internal/sim"
)

// Errors.
var (
	ErrNoSuchNode = errors.New("pimaster: no such node")
	ErrNoSuchVM   = errors.New("pimaster: no such vm")
	ErrVMExists   = errors.New("pimaster: vm already exists")
)

// NodeRef is one managed node.
type NodeRef struct {
	Name   string
	Host   netsim.NodeID
	Rack   int
	Client *restapi.Client
	// Suite and Meter are direct handles used for migration and power
	// accounting; all simulated-state access goes through the cloud
	// mutex.
	Suite *lxc.Suite
	Meter *energy.Meter
}

// VMRecord tracks a spawned VM cloud-wide.
type VMRecord struct {
	Name  string         `json:"name"`
	Node  string         `json:"node"`
	Image string         `json:"image"`
	IP    string         `json:"ip"`
	FQDN  string         `json:"fqdn"`
	Label openflow.Label `json:"label"`
	MAC   string         `json:"mac"`
	// CPUDemandMIPS is the demand declared at spawn time, reserved
	// against the node in the placement view.
	CPUDemandMIPS int64 `json:"cpu_demand_mips,omitempty"`
}

// SpawnVMRequest is the POST /vms body.
type SpawnVMRequest struct {
	Name          string   `json:"name"`
	Image         string   `json:"image"`
	MemLimitBytes int64    `json:"mem_limit_bytes,omitempty"`
	CPUShares     int      `json:"cpu_shares,omitempty"`
	CPUQuotaMIPS  int64    `json:"cpu_quota_mips,omitempty"`
	CPUDemandMIPS int64    `json:"cpu_demand_mips,omitempty"`
	Peers         []string `json:"peers,omitempty"`
	// Placer overrides the master's default for this request.
	Placer string `json:"placer,omitempty"`
}

// MigrateVMRequest is the POST /vms/{name}/migrate body.
type MigrateVMRequest struct {
	TargetNode string `json:"target_node"`
	// Routing is "label" (default; IP-less, flows survive) or "ip".
	Routing string `json:"routing,omitempty"`
}

// Config assembles a master.
type Config struct {
	Engine  *sim.Engine
	CloudMu *sync.Mutex
	Ctrl    *sdn.Controller
	Images  *image.Store
	Meter   *energy.CloudMeter
	// Placer is the default placement algorithm (best-fit if nil).
	Placer placement.Placer
	Policy placement.Policy
	// Migrations drives live migration; optional.
	Migrations *migration.Manager
	// LeaseDuration for the DHCP service (default 12h).
	LeaseDuration sim.Duration
}

// Master is the head node.
type Master struct {
	mu sync.Mutex // guards vms, macSeq, placer swaps

	engine  *sim.Engine
	cloudMu *sync.Mutex
	ctrl    *sdn.Controller
	images  *image.Store
	meter   *energy.CloudMeter
	mig     *migration.Manager

	dhcp *dhcp.Server
	dns  *dns.Server

	nodes  []*NodeRef
	byName map[string]*NodeRef
	byHost map[netsim.NodeID]*NodeRef
	// nodeIdx maps node name → index in nodes, for O(1) view updates.
	nodeIdx map[string]int
	// rackOf is the immutable host → rack map shared (read-only) with
	// every placement view, so views skip an O(nodes) rebuild.
	rackOf map[netsim.NodeID]int

	placer placement.Placer
	policy placement.Policy

	vms    map[string]*VMRecord
	macSeq int
	// placerOverrides caches named placers requested per spawn, so
	// stateful algorithms (round-robin) keep their cursor across calls.
	placerOverrides map[string]placement.Placer

	// Boot-batch placement-view cache. During a bulk fleet spawn the
	// only cloud mutations are the spawns the master itself performs, so
	// instead of re-polling every node daemon per placement the measured
	// view is cached and only the just-placed node is re-polled. The
	// cache is valid while the engine has neither advanced nor fired an
	// event since it was filled; any master-side mutation drops it. Boot
	// batches are single-threaded by contract (the caller is the fleet
	// installer, not concurrent HTTP handlers).
	bootBatch   bool
	viewCache   []placement.NodeView // measured values, index-aligned with nodes
	viewScratch []placement.NodeView
	viewAt      sim.Time
	viewFired   uint64
}

// New builds a master with its DHCP and DNS services initialised.
func New(cfg Config) (*Master, error) {
	if cfg.Engine == nil || cfg.CloudMu == nil || cfg.Ctrl == nil {
		return nil, fmt.Errorf("pimaster: engine, cloud mutex and controller are required")
	}
	if cfg.Images == nil {
		cfg.Images = image.StockImages()
	}
	if cfg.Placer == nil {
		cfg.Placer = placement.BestFit{}
	}
	m := &Master{
		engine:          cfg.Engine,
		cloudMu:         cfg.CloudMu,
		ctrl:            cfg.Ctrl,
		images:          cfg.Images,
		meter:           cfg.Meter,
		mig:             cfg.Migrations,
		dhcp:            dhcp.NewServer(cfg.Engine, cfg.LeaseDuration),
		dns:             dns.NewServer(),
		byName:          make(map[string]*NodeRef),
		byHost:          make(map[netsim.NodeID]*NodeRef),
		nodeIdx:         make(map[string]int),
		rackOf:          make(map[netsim.NodeID]int),
		placer:          cfg.Placer,
		policy:          cfg.Policy,
		vms:             make(map[string]*VMRecord),
		placerOverrides: make(map[string]placement.Placer),
	}
	if err := m.dns.AddZone(dns.DefaultZone); err != nil {
		return nil, err
	}
	if err := m.dns.AddZone("in-addr.arpa."); err != nil {
		return nil, err
	}
	return m, nil
}

// DNS exposes the naming service.
func (m *Master) DNS() *dns.Server { return m.dns }

// DHCP exposes the address service.
func (m *Master) DHCP() *dhcp.Server { return m.dhcp }

// Images exposes the image registry.
func (m *Master) Images() *image.Store { return m.images }

// SetPlacer swaps the default placement algorithm at runtime.
func (m *Master) SetPlacer(p placement.Placer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.placer = p
}

// NodeAddr returns the static address a node at (rack, idxInRack) gets
// under the 10.<rack>.0.0/20 addressing plan: pool base + 2 + idx.
func NodeAddr(rack, idxInRack int) netip.Addr {
	hostNum := 2 + idxInRack
	return netip.AddrFrom4([4]byte{10, byte(rack), byte(hostNum >> 8), byte(hostNum)})
}

// NodeReg is one entry of a bulk registration: a node ref plus its
// precomputed addressing, so registration is pure map inserts. The
// fleet builder derives MAC, Addr and FQDN in parallel on its worker
// shards; they must equal dhcp.NodeMAC(rack, idx), NodeAddr(rack, idx)
// and dns.NodeFQDN(rack, idx) respectively.
type NodeReg struct {
	Ref  *NodeRef
	Idx  int
	MAC  dhcp.MAC
	Addr netip.Addr
	FQDN string
}

// RegisterNode adds a node: a DHCP pool/lease for its rack, DNS records,
// and the REST client. Racks get pool "rack<N>" with subnet 10.<N>.0.0/20
// — room for ~4000 addresses per rack so scale-out fleets keep the same
// addressing plan as the published 4×14 testbed (small indices yield the
// identical 10.<rack>.0.<2+idx> addresses).
func (m *Master) RegisterNode(ref *NodeRef, idxInRack int) error {
	if err := checkReg(ref, idxInRack); err != nil {
		return err
	}
	return m.registerOne(NodeReg{
		Ref:  ref,
		Idx:  idxInRack,
		MAC:  dhcp.NodeMAC(ref.Rack, idxInRack),
		Addr: NodeAddr(ref.Rack, idxInRack),
		FQDN: dns.NodeFQDN(ref.Rack, idxInRack),
	})
}

// RegisterNodes bulk-registers nodes with precomputed addressing — the
// fleet builder's boot path. Entries must arrive in topology (rack)
// order; the resulting registry state is identical to calling
// RegisterNode per entry.
func (m *Master) RegisterNodes(regs []NodeReg) error {
	for i := range regs {
		if err := checkReg(regs[i].Ref, regs[i].Idx); err != nil {
			return err
		}
		if err := m.registerOne(regs[i]); err != nil {
			return err
		}
	}
	return nil
}

// checkReg validates one registration's shape against the /20 plan.
func checkReg(ref *NodeRef, idxInRack int) error {
	if ref == nil || ref.Name == "" || ref.Client == nil {
		return fmt.Errorf("pimaster: incomplete node ref")
	}
	if ref.Rack < 0 || ref.Rack > 255 {
		return fmt.Errorf("pimaster: rack %d outside the 10.<rack>.0.0/20 addressing plan", ref.Rack)
	}
	// 0xFFF is the /20 broadcast address — also off limits.
	if idxInRack < 0 || 2+idxInRack >= 0xFFF {
		return fmt.Errorf("pimaster: node index %d outside the rack /20 pool", idxInRack)
	}
	return nil
}

// registerOne performs the validated registration.
func (m *Master) registerOne(reg NodeReg) error {
	ref := reg.Ref
	if _, dup := m.byName[ref.Name]; dup {
		return fmt.Errorf("pimaster: node %s already registered", ref.Name)
	}
	pool := fmt.Sprintf("rack%d", ref.Rack)
	if _, known := m.dhcp.Pool(pool); !known {
		cidr := fmt.Sprintf("10.%d.0.0/20", ref.Rack)
		if err := m.dhcp.AddPool(pool, cidr); err != nil && !errors.Is(err, dhcp.ErrPoolExists) {
			return err
		}
	}
	// Nodes get static reservations (the administrator's IP policy):
	// pool base + 2 + idx, immune to lease expiry.
	lease, err := m.dhcp.Reserve(pool, reg.MAC, reg.Addr)
	if err != nil {
		return err
	}
	if err := m.dns.RegisterHost(reg.FQDN, lease.Addr); err != nil {
		return err
	}
	m.nodeIdx[ref.Name] = len(m.nodes)
	m.nodes = append(m.nodes, ref)
	m.byName[ref.Name] = ref
	m.byHost[ref.Host] = ref
	m.rackOf[ref.Host] = ref.Rack
	m.invalidateView()
	return nil
}

// Nodes returns the registered nodes in order.
func (m *Master) Nodes() []*NodeRef { return append([]*NodeRef(nil), m.nodes...) }

// Node resolves a node by name.
func (m *Master) Node(name string) (*NodeRef, error) {
	ref, ok := m.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchNode, name)
	}
	return ref, nil
}

// BeginBootBatch enables the incremental placement-view cache for a
// bulk spawn sequence (the scenario installer's fleet boot). Inside a
// batch, SpawnVM re-polls only the node it just placed on instead of
// polling the whole fleet per placement — the difference between O(VMs)
// and O(VMs × nodes) status calls at 10⁵-node scale. The batch is
// single-threaded by contract; any non-spawn mutation drops the cache.
func (m *Master) BeginBootBatch() {
	m.mu.Lock()
	m.bootBatch = true
	m.viewCache = nil
	m.mu.Unlock()
}

// EndBootBatch disables the view cache and returns to poll-per-spawn.
func (m *Master) EndBootBatch() {
	m.mu.Lock()
	m.bootBatch = false
	m.viewCache = nil
	m.viewScratch = nil
	m.mu.Unlock()
}

// invalidateView drops the boot-batch view cache. Caller holds m.mu or
// is single-threaded with respect to the batch.
func (m *Master) invalidateView() { m.viewCache = nil }

// pollNode converts one daemon status into the placement view row.
func (m *Master) pollNode(ref *NodeRef) (placement.NodeView, error) {
	st, err := ref.Client.Status()
	if err != nil {
		return placement.NodeView{}, fmt.Errorf("pimaster: polling %s: %w", ref.Name, err)
	}
	return placement.NodeView{
		ID:            ref.Host,
		Rack:          ref.Rack,
		CPU:           hw.MIPS(st.CPUMIPS),
		CPUUsed:       hw.MIPS(st.CPUUtil * st.CPUMIPS),
		MemTotal:      st.MemTotal,
		MemUsed:       st.MemUsed,
		Containers:    st.Containers,
		MaxContainers: st.MaxComfort,
		PoweredOn:     st.PoweredOn,
	}, nil
}

// buildView polls every node daemon's status and assembles the placement
// view. Inside a boot batch the measured rows come from the incremental
// cache (filled once, then patched per spawn); the reservation overlay
// is applied to a scratch copy so the cached measurements stay pristine.
func (m *Master) buildView() (*placement.View, error) {
	v := &placement.View{
		Locate: make(map[string]netsim.NodeID),
		Rack:   m.rackOf, // immutable after registration; placers only read
	}
	m.mu.Lock()
	batch := m.bootBatch
	cacheValid := batch && m.viewCache != nil &&
		m.viewAt == m.engine.Now() && m.viewFired == m.engine.Fired()
	m.mu.Unlock()
	if cacheValid {
		if cap(m.viewScratch) < len(m.viewCache) {
			m.viewScratch = make([]placement.NodeView, len(m.viewCache))
		}
		m.viewScratch = m.viewScratch[:len(m.viewCache)]
		copy(m.viewScratch, m.viewCache)
		v.Nodes = m.viewScratch
	} else {
		v.Nodes = make([]placement.NodeView, 0, len(m.nodes))
		for _, ref := range m.nodes {
			nv, err := m.pollNode(ref)
			if err != nil {
				return nil, err
			}
			v.Nodes = append(v.Nodes, nv)
		}
		if batch {
			m.mu.Lock()
			m.viewCache = append(m.viewCache[:0], v.Nodes...)
			m.viewAt = m.engine.Now()
			m.viewFired = m.engine.Fired()
			m.mu.Unlock()
		}
	}
	m.mu.Lock()
	reserved := make(map[string]hw.MIPS)
	for name, rec := range m.vms {
		if ref, ok := m.byName[rec.Node]; ok {
			v.Locate[name] = ref.Host
		}
		reserved[rec.Node] += hw.MIPS(rec.CPUDemandMIPS)
	}
	m.mu.Unlock()
	// Placement sees the larger of measured utilisation and declared
	// reservations, so idle-but-reserved capacity is not double-booked.
	// v.Nodes is index-aligned with m.nodes.
	for name, res := range reserved {
		if i, ok := m.nodeIdx[name]; ok && res > v.Nodes[i].CPUUsed {
			v.Nodes[i].CPUUsed = res
		}
	}
	return v, nil
}

// refreshViewNode re-polls one node into the boot-batch cache after a
// spawn landed on it, so the next placement sees the spawn's memory and
// container-count deltas without a fleet-wide poll.
func (m *Master) refreshViewNode(ref *NodeRef) {
	m.mu.Lock()
	ok := m.bootBatch && m.viewCache != nil
	var idx int
	if ok {
		idx, ok = m.nodeIdx[ref.Name]
		ok = ok && idx < len(m.viewCache)
	}
	m.mu.Unlock()
	if !ok {
		return
	}
	nv, err := m.pollNode(ref)
	m.mu.Lock()
	if err != nil || !m.bootBatch || m.viewCache == nil {
		m.viewCache = nil
	} else {
		m.viewCache[idx] = nv
	}
	m.mu.Unlock()
}

// SpawnVM places and boots a VM cloud-wide: placement, DHCP lease, DNS
// registration, SDN label, then the node daemon's REST spawn.
func (m *Master) SpawnVM(req SpawnVMRequest) (*VMRecord, error) {
	if req.Name == "" || req.Image == "" {
		return nil, fmt.Errorf("pimaster: spawn needs name and image")
	}
	m.mu.Lock()
	if _, dup := m.vms[req.Name]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrVMExists, req.Name)
	}
	placer := m.placer
	if req.Placer != "" {
		cached, ok := m.placerOverrides[req.Placer]
		if !ok {
			var err error
			cached, err = placement.ByName(req.Placer)
			if err != nil {
				m.mu.Unlock()
				return nil, err
			}
			m.placerOverrides[req.Placer] = cached
		}
		placer = cached
	}
	m.mu.Unlock()
	view, err := m.buildView()
	if err != nil {
		return nil, err
	}
	memNeed := req.MemLimitBytes
	if memNeed == 0 {
		memNeed = lxc.IdleRSSBytes
	}
	host, err := placer.Place(placement.Request{
		Name:          req.Name,
		CPUDemandMIPS: hw.MIPS(req.CPUDemandMIPS),
		MemBytes:      memNeed,
		Peers:         req.Peers,
	}, view, m.policy)
	if err != nil {
		return nil, err
	}
	ref := m.refByHost(host)
	if ref == nil {
		return nil, fmt.Errorf("%w: host %s", ErrNoSuchNode, host)
	}
	// Address and name the VM.
	m.mu.Lock()
	m.macSeq++
	mac := dhcp.ContainerMAC(m.macSeq)
	m.mu.Unlock()
	lease, err := m.dhcp.Request(fmt.Sprintf("rack%d", ref.Rack), mac)
	if err != nil {
		return nil, fmt.Errorf("pimaster: leasing address: %w", err)
	}
	rack, idx := splitNodeName(ref)
	fqdn := dns.ContainerFQDN(req.Name, rack, idx)
	if err := m.dns.RegisterHost(fqdn, lease.Addr); err != nil {
		_ = m.dhcp.Release(mac)
		return nil, err
	}
	unregisterDNS := func() {
		m.dns.RemoveName(fqdn)
		m.dns.RemoveName(dns.ReverseName(lease.Addr))
	}
	m.cloudMu.Lock()
	label := m.ctrl.AssignLabel(req.Name, ref.Host)
	m.cloudMu.Unlock()
	// Boot through the node's REST daemon.
	if _, err := ref.Client.Spawn(restapi.SpawnRequest{
		Name:          req.Name,
		Image:         req.Image,
		MemLimitBytes: req.MemLimitBytes,
		CPUShares:     req.CPUShares,
		CPUQuotaMIPS:  req.CPUQuotaMIPS,
	}); err != nil {
		unregisterDNS()
		_ = m.dhcp.Release(mac)
		return nil, err
	}
	rec := &VMRecord{
		Name:          req.Name,
		Node:          ref.Name,
		Image:         req.Image,
		IP:            lease.Addr.String(),
		FQDN:          fqdn,
		Label:         label,
		MAC:           string(mac),
		CPUDemandMIPS: req.CPUDemandMIPS,
	}
	m.mu.Lock()
	m.vms[req.Name] = rec
	m.mu.Unlock()
	// Inside a boot batch, patch just this node's cached view row.
	m.refreshViewNode(ref)
	return rec, nil
}

func (m *Master) refByHost(host netsim.NodeID) *NodeRef { return m.byHost[host] }

// splitNodeName recovers (rack, index) for naming; nodes are registered
// in rack order so index is position within the rack.
func splitNodeName(ref *NodeRef) (rack, idx int) {
	var r, i int
	if _, err := fmt.Sscanf(ref.Name, "pi-r%d-n%d", &r, &i); err == nil {
		return r, i
	}
	return ref.Rack, 0
}

// DestroyVM tears a VM down everywhere: node daemon, DNS, DHCP, registry.
func (m *Master) DestroyVM(name string) error {
	m.mu.Lock()
	rec, ok := m.vms[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchVM, name)
	}
	ref, err := m.Node(rec.Node)
	if err != nil {
		return err
	}
	if err := ref.Client.Delete(name); err != nil {
		return err
	}
	m.dns.RemoveName(rec.FQDN)
	if addr, perr := netip.ParseAddr(rec.IP); perr == nil {
		m.dns.RemoveName(dns.ReverseName(addr))
	}
	_ = m.dhcp.Release(dhcp.MAC(rec.MAC))
	m.mu.Lock()
	delete(m.vms, name)
	m.invalidateView()
	m.mu.Unlock()
	return nil
}

// VM returns a VM record.
func (m *Master) VM(name string) (*VMRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.vms[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchVM, name)
	}
	cp := *rec
	return &cp, nil
}

// VMs lists records sorted by name.
func (m *Master) VMs() []VMRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]VMRecord, 0, len(m.vms))
	for _, rec := range m.vms {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MigrateVM live-migrates a VM to the named node. The migration proceeds
// on the simulation clock; onDone (optional) observes the report.
func (m *Master) MigrateVM(name string, req MigrateVMRequest, onDone func(migration.Report)) error {
	if m.mig == nil {
		return fmt.Errorf("pimaster: migration manager not configured")
	}
	m.mu.Lock()
	rec, ok := m.vms[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchVM, name)
	}
	srcRef, err := m.Node(rec.Node)
	if err != nil {
		return err
	}
	dstRef, err := m.Node(req.TargetNode)
	if err != nil {
		return err
	}
	mode := migration.RoutingLabel
	if req.Routing == "ip" {
		mode = migration.RoutingIP
	}
	m.mu.Lock()
	m.invalidateView()
	m.mu.Unlock()
	m.cloudMu.Lock()
	defer m.cloudMu.Unlock()
	return m.mig.Migrate(migration.Request{
		Container: name,
		SrcHost:   srcRef.Host,
		DstHost:   dstRef.Host,
		SrcSuite:  srcRef.Suite,
		DstSuite:  dstRef.Suite,
		Routing:   mode,
		Label:     rec.Label,
		OnDone: func(rep migration.Report) {
			if rep.Err == nil {
				m.mu.Lock()
				if cur, ok := m.vms[name]; ok {
					cur.Node = dstRef.Name
				}
				m.mu.Unlock()
			}
			if onDone != nil {
				onDone(rep)
			}
		},
	})
}

// PowerSummary reports instantaneous cloud power draw.
type PowerSummary struct {
	TotalWatts float64 `json:"total_watts"`
	// SocketOK reports whether a single UK trailing socket board could
	// supply the whole cloud (Section III's power claim).
	SocketOK     bool    `json:"single_socket_ok"`
	SocketLimitW float64 `json:"socket_limit_watts"`
	Nodes        int     `json:"nodes"`
}

// Power reads the cloud meter.
func (m *Master) Power() PowerSummary {
	total := 0.0
	if m.meter != nil {
		total = m.meter.TotalWatts()
	}
	sock := energy.UKTrailingSocket()
	return PowerSummary{
		TotalWatts:   total,
		SocketOK:     sock.CanSupply(total),
		SocketLimitW: sock.MaxWatts(),
		Nodes:        len(m.nodes),
	}
}

// --- HTTP API ---

// Handler returns pimaster's HTTP handler (API + control panel).
func (m *Master) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+restapi.APIPrefix+"/nodes", m.handleNodes)
	mux.HandleFunc("GET "+restapi.APIPrefix+"/nodes/{name}", m.handleNode)
	mux.HandleFunc("GET "+restapi.APIPrefix+"/vms", m.handleVMList)
	mux.HandleFunc("POST "+restapi.APIPrefix+"/vms", m.handleVMSpawn)
	mux.HandleFunc("GET "+restapi.APIPrefix+"/vms/{name}", m.handleVMGet)
	mux.HandleFunc("DELETE "+restapi.APIPrefix+"/vms/{name}", m.handleVMDelete)
	mux.HandleFunc("POST "+restapi.APIPrefix+"/vms/{name}/migrate", m.handleVMMigrate)
	mux.HandleFunc("GET "+restapi.APIPrefix+"/leases", m.handleLeases)
	mux.HandleFunc("GET "+restapi.APIPrefix+"/dns", m.handleDNS)
	mux.HandleFunc("GET "+restapi.APIPrefix+"/images", m.handleImages)
	mux.HandleFunc("POST "+restapi.APIPrefix+"/images/{name}/{tag}/{op}", m.handleImageOp)
	mux.HandleFunc("GET "+restapi.APIPrefix+"/power", m.handlePower)
	mux.HandleFunc("GET /panel", m.handlePanel)
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "/panel", http.StatusFound)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (m *Master) writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNoSuchNode), errors.Is(err, ErrNoSuchVM):
		code = http.StatusNotFound
	case errors.Is(err, ErrVMExists):
		code = http.StatusConflict
	case errors.Is(err, placement.ErrNoCapacity):
		code = http.StatusConflict
	}
	writeJSON(w, code, restapi.ErrorDoc{Error: err.Error()})
}

func (m *Master) handleNodes(w http.ResponseWriter, _ *http.Request) {
	out := make([]restapi.NodeStatus, 0, len(m.nodes))
	for _, ref := range m.nodes {
		st, err := ref.Client.Status()
		if err != nil {
			m.writeErr(w, err)
			return
		}
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (m *Master) handleNode(w http.ResponseWriter, r *http.Request) {
	ref, err := m.Node(r.PathValue("name"))
	if err != nil {
		m.writeErr(w, err)
		return
	}
	st, err := ref.Client.Status()
	if err != nil {
		m.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (m *Master) handleVMList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, m.VMs())
}

func (m *Master) handleVMSpawn(w http.ResponseWriter, r *http.Request) {
	var req SpawnVMRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, restapi.ErrorDoc{Error: "bad json: " + err.Error()})
		return
	}
	rec, err := m.SpawnVM(req)
	if err != nil {
		m.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (m *Master) handleVMGet(w http.ResponseWriter, r *http.Request) {
	rec, err := m.VM(r.PathValue("name"))
	if err != nil {
		m.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (m *Master) handleVMDelete(w http.ResponseWriter, r *http.Request) {
	if err := m.DestroyVM(r.PathValue("name")); err != nil {
		m.writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (m *Master) handleVMMigrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateVMRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, restapi.ErrorDoc{Error: "bad json: " + err.Error()})
		return
	}
	if err := m.MigrateVM(r.PathValue("name"), req, nil); err != nil {
		m.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "migrating"})
}

// LeaseDoc is the JSON view of one DHCP lease.
type LeaseDoc struct {
	MAC    string `json:"mac"`
	IP     string `json:"ip"`
	Pool   string `json:"pool"`
	Static bool   `json:"static"`
}

func (m *Master) handleLeases(w http.ResponseWriter, _ *http.Request) {
	leases := m.dhcp.Leases()
	out := make([]LeaseDoc, 0, len(leases))
	for _, l := range leases {
		out = append(out, LeaseDoc{MAC: string(l.MAC), IP: l.Addr.String(), Pool: l.Pool, Static: l.Static})
	}
	writeJSON(w, http.StatusOK, out)
}

// DNSDoc is the JSON view of one DNS record.
type DNSDoc struct {
	Name  string `json:"name"`
	Type  string `json:"type"`
	Value string `json:"value"`
}

func (m *Master) handleDNS(w http.ResponseWriter, _ *http.Request) {
	recs := m.dns.Dump()
	out := make([]DNSDoc, 0, len(recs))
	for _, rec := range recs {
		out = append(out, DNSDoc{Name: rec.Name, Type: rec.Type.String(), Value: rec.Value})
	}
	writeJSON(w, http.StatusOK, out)
}

func (m *Master) handleImages(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, m.images.List())
}

func (m *Master) handlePower(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, m.Power())
}

// StartLeaseSweeper arms periodic DHCP housekeeping: expired dynamic
// leases are reclaimed every period. Call under the cloud lock (it arms
// a simulation ticker); returns a stop function. Opt-in because a
// perpetual ticker keeps the event queue non-empty, which batch
// experiments that drain the queue would never finish.
func (m *Master) StartLeaseSweeper(period sim.Duration) func() {
	if period <= 0 {
		period = 15 * 60 * 1e9 // 15 minutes
	}
	ticker := m.engine.NewTicker(period, func(sim.Time) {
		m.dhcp.SweepExpired()
	})
	return ticker.Stop
}

// ImageOpRequest is the POST /images/{name}/{tag}/{op} body: patch adds
// a layer, upgrade replaces the base layer, spawn stamps a new name on
// the same layers — the pimaster "image upgrading, patching, and
// spawning" tools.
type ImageOpRequest struct {
	// NewTag names the resulting image's tag (patch/upgrade) and, with
	// NewName, the spawned reference.
	NewTag  string `json:"new_tag"`
	NewName string `json:"new_name,omitempty"` // spawn only
	// Layer describes the added/replacement layer (patch/upgrade).
	LayerSizeBytes int64    `json:"layer_size_bytes,omitempty"`
	LayerPackages  []string `json:"layer_packages,omitempty"`
	LayerNote      string   `json:"layer_note,omitempty"`
}

// handleImageOp serves POST /api/v1/images/{name}/{tag}/{op}.
func (m *Master) handleImageOp(w http.ResponseWriter, r *http.Request) {
	name, tag, op := r.PathValue("name"), r.PathValue("tag"), r.PathValue("op")
	var req ImageOpRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, restapi.ErrorDoc{Error: "bad json: " + err.Error()})
		return
	}
	ref := name + ":" + tag
	var (
		out *image.Image
		err error
	)
	switch op {
	case "patch", "upgrade":
		var layer image.Layer
		layer, err = image.NewLayer(req.LayerSizeBytes, req.LayerPackages, req.LayerNote)
		if err == nil && op == "patch" {
			out, err = m.images.Patch(ref, req.NewTag, layer)
		} else if err == nil {
			out, err = m.images.Upgrade(ref, req.NewTag, layer)
		}
	case "spawn":
		out, err = m.images.Spawn(ref, req.NewName, req.NewTag)
	default:
		writeJSON(w, http.StatusBadRequest, restapi.ErrorDoc{Error: fmt.Sprintf("unknown image op %q", op)})
		return
	}
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, image.ErrNotFound) {
			code = http.StatusNotFound
		}
		if errors.Is(err, image.ErrExists) {
			code = http.StatusConflict
		}
		writeJSON(w, code, restapi.ErrorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"ref":        out.Ref(),
		"id":         out.ID(),
		"size_bytes": out.SizeBytes(),
		"layers":     len(out.Layers),
	})
}
