// Package pimaster implements the PiCloud head node: the inventory of
// node daemons, placement-driven VM spawning, the DHCP and DNS services,
// image hosting, the migration driver and the outward-facing web control
// panel of Fig. 4. Per the paper, "an outward-facing webserver on
// pimaster provides a web-based control panel to users and
// administrators ... [which] interacts with the local daemons, and
// controls workloads running on the Pi devices using RESTful interfaces".
//
// Locking: pimaster's own registries are guarded by its internal mutex;
// the simulated cloud is guarded by the cloud-wide mutex shared with the
// node daemons and the engine driver. pimaster never holds its own mutex
// while acquiring the cloud mutex, and talks to node daemons over real
// HTTP (each daemon request locks the cloud itself).
package pimaster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/netip"
	"sort"
	"sync"

	"repro/internal/dhcp"
	"repro/internal/dns"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/image"
	"repro/internal/lxc"
	"repro/internal/migration"
	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/placement"
	"repro/internal/restapi"
	"repro/internal/sdn"
	"repro/internal/sim"
)

// Errors.
var (
	ErrNoSuchNode = errors.New("pimaster: no such node")
	ErrNoSuchVM   = errors.New("pimaster: no such vm")
	ErrVMExists   = errors.New("pimaster: vm already exists")
)

// NodeRef is one managed node.
type NodeRef struct {
	Name   string
	Host   netsim.NodeID
	Rack   int
	Client *restapi.Client
	// Suite and Meter are direct handles used for migration and power
	// accounting; all simulated-state access goes through the cloud
	// mutex.
	Suite *lxc.Suite
	Meter *energy.Meter
}

// VMRecord tracks a spawned VM cloud-wide.
type VMRecord struct {
	Name  string         `json:"name"`
	Node  string         `json:"node"`
	Image string         `json:"image"`
	IP    string         `json:"ip"`
	FQDN  string         `json:"fqdn"`
	Label openflow.Label `json:"label"`
	MAC   string         `json:"mac"`
	// CPUDemandMIPS is the demand declared at spawn time, reserved
	// against the node in the placement view.
	CPUDemandMIPS int64 `json:"cpu_demand_mips,omitempty"`
}

// SpawnVMRequest is the POST /vms body.
type SpawnVMRequest struct {
	Name          string   `json:"name"`
	Image         string   `json:"image"`
	MemLimitBytes int64    `json:"mem_limit_bytes,omitempty"`
	CPUShares     int      `json:"cpu_shares,omitempty"`
	CPUQuotaMIPS  int64    `json:"cpu_quota_mips,omitempty"`
	CPUDemandMIPS int64    `json:"cpu_demand_mips,omitempty"`
	Peers         []string `json:"peers,omitempty"`
	// Placer overrides the master's default for this request.
	Placer string `json:"placer,omitempty"`
}

// MigrateVMRequest is the POST /vms/{name}/migrate body.
type MigrateVMRequest struct {
	TargetNode string `json:"target_node"`
	// Routing is "label" (default; IP-less, flows survive) or "ip".
	Routing string `json:"routing,omitempty"`
}

// Config assembles a master.
type Config struct {
	Engine  *sim.Engine
	CloudMu *sync.Mutex
	Ctrl    *sdn.Controller
	Images  *image.Store
	Meter   *energy.CloudMeter
	// Placer is the default placement algorithm (best-fit if nil).
	Placer placement.Placer
	Policy placement.Policy
	// Migrations drives live migration; optional.
	Migrations *migration.Manager
	// LeaseDuration for the DHCP service (default 12h).
	LeaseDuration sim.Duration
}

// Master is the head node.
type Master struct {
	mu sync.Mutex // guards vms, macSeq, placer swaps

	engine  *sim.Engine
	cloudMu *sync.Mutex
	ctrl    *sdn.Controller
	images  *image.Store
	meter   *energy.CloudMeter
	mig     *migration.Manager

	dhcp *dhcp.Server
	dns  *dns.Server

	nodes  []*NodeRef
	byName map[string]*NodeRef

	placer placement.Placer
	policy placement.Policy

	vms    map[string]*VMRecord
	macSeq int
	// placerOverrides caches named placers requested per spawn, so
	// stateful algorithms (round-robin) keep their cursor across calls.
	placerOverrides map[string]placement.Placer
}

// New builds a master with its DHCP and DNS services initialised.
func New(cfg Config) (*Master, error) {
	if cfg.Engine == nil || cfg.CloudMu == nil || cfg.Ctrl == nil {
		return nil, fmt.Errorf("pimaster: engine, cloud mutex and controller are required")
	}
	if cfg.Images == nil {
		cfg.Images = image.StockImages()
	}
	if cfg.Placer == nil {
		cfg.Placer = placement.BestFit{}
	}
	m := &Master{
		engine:          cfg.Engine,
		cloudMu:         cfg.CloudMu,
		ctrl:            cfg.Ctrl,
		images:          cfg.Images,
		meter:           cfg.Meter,
		mig:             cfg.Migrations,
		dhcp:            dhcp.NewServer(cfg.Engine, cfg.LeaseDuration),
		dns:             dns.NewServer(),
		byName:          make(map[string]*NodeRef),
		placer:          cfg.Placer,
		policy:          cfg.Policy,
		vms:             make(map[string]*VMRecord),
		placerOverrides: make(map[string]placement.Placer),
	}
	if err := m.dns.AddZone(dns.DefaultZone); err != nil {
		return nil, err
	}
	if err := m.dns.AddZone("in-addr.arpa."); err != nil {
		return nil, err
	}
	return m, nil
}

// DNS exposes the naming service.
func (m *Master) DNS() *dns.Server { return m.dns }

// DHCP exposes the address service.
func (m *Master) DHCP() *dhcp.Server { return m.dhcp }

// Images exposes the image registry.
func (m *Master) Images() *image.Store { return m.images }

// SetPlacer swaps the default placement algorithm at runtime.
func (m *Master) SetPlacer(p placement.Placer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.placer = p
}

// RegisterNode adds a node: a DHCP pool/lease for its rack, DNS records,
// and the REST client. Racks get pool "rack<N>" with subnet 10.<N>.0.0/20
// — room for ~4000 addresses per rack so scale-out fleets keep the same
// addressing plan as the published 4×14 testbed (small indices yield the
// identical 10.<rack>.0.<2+idx> addresses).
func (m *Master) RegisterNode(ref *NodeRef, idxInRack int) error {
	if ref == nil || ref.Name == "" || ref.Client == nil {
		return fmt.Errorf("pimaster: incomplete node ref")
	}
	if _, dup := m.byName[ref.Name]; dup {
		return fmt.Errorf("pimaster: node %s already registered", ref.Name)
	}
	if ref.Rack < 0 || ref.Rack > 255 {
		return fmt.Errorf("pimaster: rack %d outside the 10.<rack>.0.0/20 addressing plan", ref.Rack)
	}
	hostNum := 2 + idxInRack
	// 0xFFF is the /20 broadcast address — also off limits.
	if idxInRack < 0 || hostNum >= 0xFFF {
		return fmt.Errorf("pimaster: node index %d outside the rack /20 pool", idxInRack)
	}
	pool := fmt.Sprintf("rack%d", ref.Rack)
	cidr := fmt.Sprintf("10.%d.0.0/20", ref.Rack)
	if err := m.dhcp.AddPool(pool, cidr); err != nil && !errors.Is(err, dhcp.ErrPoolExists) {
		return err
	}
	// Nodes get static reservations (the administrator's IP policy):
	// pool base + 2 + idx, immune to lease expiry.
	addr := netip.AddrFrom4([4]byte{10, byte(ref.Rack), byte(hostNum >> 8), byte(hostNum)})
	lease, err := m.dhcp.Reserve(pool, dhcp.NodeMAC(ref.Rack, idxInRack), addr)
	if err != nil {
		return err
	}
	fqdn := dns.NodeFQDN(ref.Rack, idxInRack)
	if err := m.dns.RegisterHost(fqdn, lease.Addr); err != nil {
		return err
	}
	m.nodes = append(m.nodes, ref)
	m.byName[ref.Name] = ref
	return nil
}

// Nodes returns the registered nodes in order.
func (m *Master) Nodes() []*NodeRef { return append([]*NodeRef(nil), m.nodes...) }

// Node resolves a node by name.
func (m *Master) Node(name string) (*NodeRef, error) {
	ref, ok := m.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchNode, name)
	}
	return ref, nil
}

// buildView polls every node daemon's status over REST and assembles the
// placement view.
func (m *Master) buildView() (*placement.View, error) {
	v := &placement.View{
		Locate: make(map[string]netsim.NodeID),
		Rack:   make(map[netsim.NodeID]int),
	}
	for _, ref := range m.nodes {
		st, err := ref.Client.Status()
		if err != nil {
			return nil, fmt.Errorf("pimaster: polling %s: %w", ref.Name, err)
		}
		v.Nodes = append(v.Nodes, placement.NodeView{
			ID:            ref.Host,
			Rack:          ref.Rack,
			CPU:           hw.MIPS(st.CPUMIPS),
			CPUUsed:       hw.MIPS(st.CPUUtil * st.CPUMIPS),
			MemTotal:      st.MemTotal,
			MemUsed:       st.MemUsed,
			Containers:    st.Containers,
			MaxContainers: st.MaxComfort,
			PoweredOn:     st.PoweredOn,
		})
		v.Rack[ref.Host] = ref.Rack
	}
	m.mu.Lock()
	reserved := make(map[string]hw.MIPS)
	for name, rec := range m.vms {
		if ref, ok := m.byName[rec.Node]; ok {
			v.Locate[name] = ref.Host
		}
		reserved[rec.Node] += hw.MIPS(rec.CPUDemandMIPS)
	}
	m.mu.Unlock()
	// Placement sees the larger of measured utilisation and declared
	// reservations, so idle-but-reserved capacity is not double-booked.
	// v.Nodes is index-aligned with m.nodes.
	for i := range v.Nodes {
		if res := reserved[m.nodes[i].Name]; res > v.Nodes[i].CPUUsed {
			v.Nodes[i].CPUUsed = res
		}
	}
	return v, nil
}

// SpawnVM places and boots a VM cloud-wide: placement, DHCP lease, DNS
// registration, SDN label, then the node daemon's REST spawn.
func (m *Master) SpawnVM(req SpawnVMRequest) (*VMRecord, error) {
	if req.Name == "" || req.Image == "" {
		return nil, fmt.Errorf("pimaster: spawn needs name and image")
	}
	m.mu.Lock()
	if _, dup := m.vms[req.Name]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrVMExists, req.Name)
	}
	placer := m.placer
	if req.Placer != "" {
		cached, ok := m.placerOverrides[req.Placer]
		if !ok {
			var err error
			cached, err = placement.ByName(req.Placer)
			if err != nil {
				m.mu.Unlock()
				return nil, err
			}
			m.placerOverrides[req.Placer] = cached
		}
		placer = cached
	}
	m.mu.Unlock()
	view, err := m.buildView()
	if err != nil {
		return nil, err
	}
	memNeed := req.MemLimitBytes
	if memNeed == 0 {
		memNeed = lxc.IdleRSSBytes
	}
	host, err := placer.Place(placement.Request{
		Name:          req.Name,
		CPUDemandMIPS: hw.MIPS(req.CPUDemandMIPS),
		MemBytes:      memNeed,
		Peers:         req.Peers,
	}, view, m.policy)
	if err != nil {
		return nil, err
	}
	ref := m.refByHost(host)
	if ref == nil {
		return nil, fmt.Errorf("%w: host %s", ErrNoSuchNode, host)
	}
	// Address and name the VM.
	m.mu.Lock()
	m.macSeq++
	mac := dhcp.ContainerMAC(m.macSeq)
	m.mu.Unlock()
	lease, err := m.dhcp.Request(fmt.Sprintf("rack%d", ref.Rack), mac)
	if err != nil {
		return nil, fmt.Errorf("pimaster: leasing address: %w", err)
	}
	rack, idx := splitNodeName(ref)
	fqdn := dns.ContainerFQDN(req.Name, rack, idx)
	if err := m.dns.RegisterHost(fqdn, lease.Addr); err != nil {
		_ = m.dhcp.Release(mac)
		return nil, err
	}
	unregisterDNS := func() {
		m.dns.RemoveName(fqdn)
		m.dns.RemoveName(dns.ReverseName(lease.Addr))
	}
	m.cloudMu.Lock()
	label := m.ctrl.AssignLabel(req.Name, ref.Host)
	m.cloudMu.Unlock()
	// Boot through the node's REST daemon.
	if _, err := ref.Client.Spawn(restapi.SpawnRequest{
		Name:          req.Name,
		Image:         req.Image,
		MemLimitBytes: req.MemLimitBytes,
		CPUShares:     req.CPUShares,
		CPUQuotaMIPS:  req.CPUQuotaMIPS,
	}); err != nil {
		unregisterDNS()
		_ = m.dhcp.Release(mac)
		return nil, err
	}
	rec := &VMRecord{
		Name:          req.Name,
		Node:          ref.Name,
		Image:         req.Image,
		IP:            lease.Addr.String(),
		FQDN:          fqdn,
		Label:         label,
		MAC:           string(mac),
		CPUDemandMIPS: req.CPUDemandMIPS,
	}
	m.mu.Lock()
	m.vms[req.Name] = rec
	m.mu.Unlock()
	return rec, nil
}

func (m *Master) refByHost(host netsim.NodeID) *NodeRef {
	for _, ref := range m.nodes {
		if ref.Host == host {
			return ref
		}
	}
	return nil
}

// splitNodeName recovers (rack, index) for naming; nodes are registered
// in rack order so index is position within the rack.
func splitNodeName(ref *NodeRef) (rack, idx int) {
	var r, i int
	if _, err := fmt.Sscanf(ref.Name, "pi-r%d-n%d", &r, &i); err == nil {
		return r, i
	}
	return ref.Rack, 0
}

// DestroyVM tears a VM down everywhere: node daemon, DNS, DHCP, registry.
func (m *Master) DestroyVM(name string) error {
	m.mu.Lock()
	rec, ok := m.vms[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchVM, name)
	}
	ref, err := m.Node(rec.Node)
	if err != nil {
		return err
	}
	if err := ref.Client.Delete(name); err != nil {
		return err
	}
	m.dns.RemoveName(rec.FQDN)
	if addr, perr := netip.ParseAddr(rec.IP); perr == nil {
		m.dns.RemoveName(dns.ReverseName(addr))
	}
	_ = m.dhcp.Release(dhcp.MAC(rec.MAC))
	m.mu.Lock()
	delete(m.vms, name)
	m.mu.Unlock()
	return nil
}

// VM returns a VM record.
func (m *Master) VM(name string) (*VMRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.vms[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchVM, name)
	}
	cp := *rec
	return &cp, nil
}

// VMs lists records sorted by name.
func (m *Master) VMs() []VMRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]VMRecord, 0, len(m.vms))
	for _, rec := range m.vms {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MigrateVM live-migrates a VM to the named node. The migration proceeds
// on the simulation clock; onDone (optional) observes the report.
func (m *Master) MigrateVM(name string, req MigrateVMRequest, onDone func(migration.Report)) error {
	if m.mig == nil {
		return fmt.Errorf("pimaster: migration manager not configured")
	}
	m.mu.Lock()
	rec, ok := m.vms[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchVM, name)
	}
	srcRef, err := m.Node(rec.Node)
	if err != nil {
		return err
	}
	dstRef, err := m.Node(req.TargetNode)
	if err != nil {
		return err
	}
	mode := migration.RoutingLabel
	if req.Routing == "ip" {
		mode = migration.RoutingIP
	}
	m.cloudMu.Lock()
	defer m.cloudMu.Unlock()
	return m.mig.Migrate(migration.Request{
		Container: name,
		SrcHost:   srcRef.Host,
		DstHost:   dstRef.Host,
		SrcSuite:  srcRef.Suite,
		DstSuite:  dstRef.Suite,
		Routing:   mode,
		Label:     rec.Label,
		OnDone: func(rep migration.Report) {
			if rep.Err == nil {
				m.mu.Lock()
				if cur, ok := m.vms[name]; ok {
					cur.Node = dstRef.Name
				}
				m.mu.Unlock()
			}
			if onDone != nil {
				onDone(rep)
			}
		},
	})
}

// PowerSummary reports instantaneous cloud power draw.
type PowerSummary struct {
	TotalWatts float64 `json:"total_watts"`
	// SocketOK reports whether a single UK trailing socket board could
	// supply the whole cloud (Section III's power claim).
	SocketOK     bool    `json:"single_socket_ok"`
	SocketLimitW float64 `json:"socket_limit_watts"`
	Nodes        int     `json:"nodes"`
}

// Power reads the cloud meter.
func (m *Master) Power() PowerSummary {
	total := 0.0
	if m.meter != nil {
		total = m.meter.TotalWatts()
	}
	sock := energy.UKTrailingSocket()
	return PowerSummary{
		TotalWatts:   total,
		SocketOK:     sock.CanSupply(total),
		SocketLimitW: sock.MaxWatts(),
		Nodes:        len(m.nodes),
	}
}

// --- HTTP API ---

// Handler returns pimaster's HTTP handler (API + control panel).
func (m *Master) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+restapi.APIPrefix+"/nodes", m.handleNodes)
	mux.HandleFunc("GET "+restapi.APIPrefix+"/nodes/{name}", m.handleNode)
	mux.HandleFunc("GET "+restapi.APIPrefix+"/vms", m.handleVMList)
	mux.HandleFunc("POST "+restapi.APIPrefix+"/vms", m.handleVMSpawn)
	mux.HandleFunc("GET "+restapi.APIPrefix+"/vms/{name}", m.handleVMGet)
	mux.HandleFunc("DELETE "+restapi.APIPrefix+"/vms/{name}", m.handleVMDelete)
	mux.HandleFunc("POST "+restapi.APIPrefix+"/vms/{name}/migrate", m.handleVMMigrate)
	mux.HandleFunc("GET "+restapi.APIPrefix+"/leases", m.handleLeases)
	mux.HandleFunc("GET "+restapi.APIPrefix+"/dns", m.handleDNS)
	mux.HandleFunc("GET "+restapi.APIPrefix+"/images", m.handleImages)
	mux.HandleFunc("POST "+restapi.APIPrefix+"/images/{name}/{tag}/{op}", m.handleImageOp)
	mux.HandleFunc("GET "+restapi.APIPrefix+"/power", m.handlePower)
	mux.HandleFunc("GET /panel", m.handlePanel)
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "/panel", http.StatusFound)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (m *Master) writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNoSuchNode), errors.Is(err, ErrNoSuchVM):
		code = http.StatusNotFound
	case errors.Is(err, ErrVMExists):
		code = http.StatusConflict
	case errors.Is(err, placement.ErrNoCapacity):
		code = http.StatusConflict
	}
	writeJSON(w, code, restapi.ErrorDoc{Error: err.Error()})
}

func (m *Master) handleNodes(w http.ResponseWriter, _ *http.Request) {
	out := make([]restapi.NodeStatus, 0, len(m.nodes))
	for _, ref := range m.nodes {
		st, err := ref.Client.Status()
		if err != nil {
			m.writeErr(w, err)
			return
		}
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (m *Master) handleNode(w http.ResponseWriter, r *http.Request) {
	ref, err := m.Node(r.PathValue("name"))
	if err != nil {
		m.writeErr(w, err)
		return
	}
	st, err := ref.Client.Status()
	if err != nil {
		m.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (m *Master) handleVMList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, m.VMs())
}

func (m *Master) handleVMSpawn(w http.ResponseWriter, r *http.Request) {
	var req SpawnVMRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, restapi.ErrorDoc{Error: "bad json: " + err.Error()})
		return
	}
	rec, err := m.SpawnVM(req)
	if err != nil {
		m.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (m *Master) handleVMGet(w http.ResponseWriter, r *http.Request) {
	rec, err := m.VM(r.PathValue("name"))
	if err != nil {
		m.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (m *Master) handleVMDelete(w http.ResponseWriter, r *http.Request) {
	if err := m.DestroyVM(r.PathValue("name")); err != nil {
		m.writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (m *Master) handleVMMigrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateVMRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, restapi.ErrorDoc{Error: "bad json: " + err.Error()})
		return
	}
	if err := m.MigrateVM(r.PathValue("name"), req, nil); err != nil {
		m.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "migrating"})
}

// LeaseDoc is the JSON view of one DHCP lease.
type LeaseDoc struct {
	MAC    string `json:"mac"`
	IP     string `json:"ip"`
	Pool   string `json:"pool"`
	Static bool   `json:"static"`
}

func (m *Master) handleLeases(w http.ResponseWriter, _ *http.Request) {
	leases := m.dhcp.Leases()
	out := make([]LeaseDoc, 0, len(leases))
	for _, l := range leases {
		out = append(out, LeaseDoc{MAC: string(l.MAC), IP: l.Addr.String(), Pool: l.Pool, Static: l.Static})
	}
	writeJSON(w, http.StatusOK, out)
}

// DNSDoc is the JSON view of one DNS record.
type DNSDoc struct {
	Name  string `json:"name"`
	Type  string `json:"type"`
	Value string `json:"value"`
}

func (m *Master) handleDNS(w http.ResponseWriter, _ *http.Request) {
	recs := m.dns.Dump()
	out := make([]DNSDoc, 0, len(recs))
	for _, rec := range recs {
		out = append(out, DNSDoc{Name: rec.Name, Type: rec.Type.String(), Value: rec.Value})
	}
	writeJSON(w, http.StatusOK, out)
}

func (m *Master) handleImages(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, m.images.List())
}

func (m *Master) handlePower(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, m.Power())
}

// StartLeaseSweeper arms periodic DHCP housekeeping: expired dynamic
// leases are reclaimed every period. Call under the cloud lock (it arms
// a simulation ticker); returns a stop function. Opt-in because a
// perpetual ticker keeps the event queue non-empty, which batch
// experiments that drain the queue would never finish.
func (m *Master) StartLeaseSweeper(period sim.Duration) func() {
	if period <= 0 {
		period = 15 * 60 * 1e9 // 15 minutes
	}
	ticker := m.engine.NewTicker(period, func(sim.Time) {
		m.dhcp.SweepExpired()
	})
	return ticker.Stop
}

// ImageOpRequest is the POST /images/{name}/{tag}/{op} body: patch adds
// a layer, upgrade replaces the base layer, spawn stamps a new name on
// the same layers — the pimaster "image upgrading, patching, and
// spawning" tools.
type ImageOpRequest struct {
	// NewTag names the resulting image's tag (patch/upgrade) and, with
	// NewName, the spawned reference.
	NewTag  string `json:"new_tag"`
	NewName string `json:"new_name,omitempty"` // spawn only
	// Layer describes the added/replacement layer (patch/upgrade).
	LayerSizeBytes int64    `json:"layer_size_bytes,omitempty"`
	LayerPackages  []string `json:"layer_packages,omitempty"`
	LayerNote      string   `json:"layer_note,omitempty"`
}

// handleImageOp serves POST /api/v1/images/{name}/{tag}/{op}.
func (m *Master) handleImageOp(w http.ResponseWriter, r *http.Request) {
	name, tag, op := r.PathValue("name"), r.PathValue("tag"), r.PathValue("op")
	var req ImageOpRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, restapi.ErrorDoc{Error: "bad json: " + err.Error()})
		return
	}
	ref := name + ":" + tag
	var (
		out *image.Image
		err error
	)
	switch op {
	case "patch", "upgrade":
		var layer image.Layer
		layer, err = image.NewLayer(req.LayerSizeBytes, req.LayerPackages, req.LayerNote)
		if err == nil && op == "patch" {
			out, err = m.images.Patch(ref, req.NewTag, layer)
		} else if err == nil {
			out, err = m.images.Upgrade(ref, req.NewTag, layer)
		}
	case "spawn":
		out, err = m.images.Spawn(ref, req.NewName, req.NewTag)
	default:
		writeJSON(w, http.StatusBadRequest, restapi.ErrorDoc{Error: fmt.Sprintf("unknown image op %q", op)})
		return
	}
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, image.ErrNotFound) {
			code = http.StatusNotFound
		}
		if errors.Is(err, image.ErrExists) {
			code = http.StatusConflict
		}
		writeJSON(w, code, restapi.ErrorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"ref":        out.Ref(),
		"id":         out.ID(),
		"size_bytes": out.SizeBytes(),
		"layers":     len(out.Layers),
	})
}
