package pimaster

import (
	"fmt"
	"html/template"
	"net/http"

	"repro/internal/hw"
	"repro/internal/restapi"
)

// panelTmpl renders the Fig. 4 control panel: per-rack node cards with
// CPU/memory bars, the container list, power, leases and DNS summaries.
var panelTmpl = template.Must(template.New("panel").Funcs(template.FuncMap{
	"pct": func(f float64) string { return fmt.Sprintf("%.0f%%", f*100) },
	"mib": func(b int64) string { return fmt.Sprintf("%d MiB", b/hw.MiB) },
	"w":   func(f float64) string { return fmt.Sprintf("%.1f W", f) },
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>PiCloud Control Panel — pimaster</title>
<style>
body { font-family: sans-serif; margin: 1.5em; background: #f4f4f4; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.2em; }
.summary { background: #fff; border: 1px solid #ccc; padding: .8em; margin-bottom: 1em; }
.rack { display: inline-block; vertical-align: top; background: #fff; border: 1px solid #aaa; margin: .4em; padding: .5em; }
.node { border-bottom: 1px solid #eee; padding: .25em 0; font-size: .85em; }
.bar { display: inline-block; width: 90px; height: 9px; background: #ddd; margin: 0 .4em; }
.bar i { display: block; height: 100%; background: #2a7; }
.bar i.hot { background: #d33; }
table { border-collapse: collapse; background: #fff; font-size: .85em; }
td, th { border: 1px solid #ccc; padding: .25em .6em; text-align: left; }
.off { color: #999; }
</style>
</head>
<body>
<h1>Glasgow Raspberry Pi Cloud — pimaster control panel</h1>
<div class="summary">
  <b>{{.NodeCount}}</b> nodes in <b>{{.RackCount}}</b> racks ·
  <b>{{.VMCount}}</b> VMs ·
  power draw <b>{{w .Power.TotalWatts}}</b>
  (single socket {{if .Power.SocketOK}}OK{{else}}EXCEEDED{{end}},
  limit {{w .Power.SocketLimitW}}) ·
  sim time {{.SimTime}}
</div>
<h2>Racks</h2>
{{range .Racks}}<div class="rack">
  <b>rack {{.Index}}</b>
  {{range .Nodes}}<div class="node{{if not .PoweredOn}} off{{end}}">
    {{.Node}}
    cpu<span class="bar"><i{{if gt .CPUUtil 0.85}} class="hot"{{end}} style="width:{{pct .CPUUtil}}"></i></span>{{pct .CPUUtil}}
    mem<span class="bar"><i style="width:{{pct .MemFrac}}"></i></span>{{mib .MemUsed}}
    · {{.Running}}/{{.Containers}} up
  </div>{{end}}
</div>{{end}}
<h2>Virtual machines</h2>
<table>
<tr><th>name</th><th>node</th><th>image</th><th>ip</th><th>fqdn</th><th>label</th></tr>
{{range .VMs}}<tr><td>{{.Name}}</td><td>{{.Node}}</td><td>{{.Image}}</td><td>{{.IP}}</td><td>{{.FQDN}}</td><td>{{.Label}}</td></tr>{{end}}
</table>
<h2>Services</h2>
<div class="summary">
DHCP leases: <b>{{.LeaseCount}}</b> · DNS records: <b>{{.DNSCount}}</b> · images: {{range .Images}}<code>{{.}}</code> {{end}}
</div>
</body>
</html>`))

// panelNode is one node row in the panel.
type panelNode struct {
	restapi.NodeStatus
	MemFrac float64
}

// panelRack groups panel rows.
type panelRack struct {
	Index int
	Nodes []panelNode
}

// panelData feeds the template.
type panelData struct {
	NodeCount  int
	RackCount  int
	VMCount    int
	Power      PowerSummary
	SimTime    string
	Racks      []panelRack
	VMs        []VMRecord
	LeaseCount int
	DNSCount   int
	Images     []string
}

func (m *Master) handlePanel(w http.ResponseWriter, _ *http.Request) {
	rackMap := make(map[int]*panelRack)
	var rackOrder []int
	for _, ref := range m.nodes {
		st, err := ref.Client.Status()
		if err != nil {
			m.writeErr(w, err)
			return
		}
		pr, ok := rackMap[ref.Rack]
		if !ok {
			pr = &panelRack{Index: ref.Rack}
			rackMap[ref.Rack] = pr
			rackOrder = append(rackOrder, ref.Rack)
		}
		memFrac := 0.0
		if st.MemTotal > 0 {
			memFrac = float64(st.MemUsed) / float64(st.MemTotal)
		}
		pr.Nodes = append(pr.Nodes, panelNode{NodeStatus: st, MemFrac: memFrac})
	}
	data := panelData{
		NodeCount:  len(m.nodes),
		RackCount:  len(rackOrder),
		VMCount:    len(m.VMs()),
		Power:      m.Power(),
		SimTime:    m.engine.Now().String(),
		VMs:        m.VMs(),
		LeaseCount: len(m.dhcp.Leases()),
		DNSCount:   m.dns.RecordCount(),
		Images:     m.images.List(),
	}
	for _, idx := range rackOrder {
		data.Racks = append(data.Racks, *rackMap[idx])
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := panelTmpl.Execute(w, data); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}
