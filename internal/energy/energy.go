// Package energy implements the power-accounting layer of the PiCloud:
// per-device meters that integrate a piecewise-constant power signal over
// virtual time, a whole-cloud meter (the "single trailing power socket"
// of Section III), and the data-centre cooling model behind Table I's
// cooling column and the paper's "33% of total power" claim.
package energy

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/hw"
	"repro/internal/sim"
)

// DefaultCoolingShare is the fraction of total DC power consumed by power
// and cooling infrastructure, "reportedly 33%" (Section IV).
const DefaultCoolingShare = 0.33

// Meter integrates the energy drawn by one device. Power is treated as
// piecewise-constant between SetUtilisation calls on the virtual clock.
// Meter is safe for concurrent use so HTTP handlers can read it.
//
// The integral is span-anchored, like the network layer's flow
// accounting: the committed total moves only at the device's own power
// state changes (on/off, utilisation), and reads materialise the
// pending constant-power span on demand without committing it. The
// committed floats are therefore a pure function of the power-state
// history — queries never shift the chunking — which is what lets the
// kernel checkpoint fingerprint include energy state exactly.
type Meter struct {
	mu      sync.Mutex
	profile hw.PowerProfile
	lastAt  sim.Time
	util    float64
	joules  float64
	on      bool
	// group is the CloudMeter sub-meter this device reports under (nil
	// until attached). State changes invalidate the group's caches.
	group *meterGroup
}

// invalidate flags the parent sub-meter after a power-state change.
// Called with m.mu held; the flags are atomics, so readers on other
// goroutines (HTTP handlers polling totals) need no meter locks.
func (m *Meter) invalidate() {
	if m.group != nil {
		m.group.wattsDirty.Store(true)
		m.group.energyDirty.Store(true)
	}
}

// NewMeter returns a meter for a device with the given power profile.
// The device starts powered off at the given time.
func NewMeter(profile hw.PowerProfile, at sim.Time) *Meter {
	return &Meter{profile: profile, lastAt: at}
}

// PowerOn marks the device powered with zero utilisation.
func (m *Meter) PowerOn(at sim.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accumulate(at)
	m.on = true
	m.util = 0
	m.invalidate()
}

// PowerOff marks the device unpowered; it draws nothing until PowerOn.
func (m *Meter) PowerOff(at sim.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accumulate(at)
	m.on = false
	m.util = 0
	m.invalidate()
}

// SetUtilisation records a change in CPU utilisation at virtual time at.
// Calls must carry non-decreasing times.
func (m *Meter) SetUtilisation(at sim.Time, util float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accumulate(at)
	m.util = util
	m.invalidate()
}

// accumulate commits the span travelled at the current constant power
// and re-anchors it at at — called only from power-state changes, never
// from reads, so the committed total is independent of who observed the
// meter when. Caller holds m.mu.
func (m *Meter) accumulate(at sim.Time) {
	m.joules += m.pendingJoules(at)
	if at > m.lastAt {
		m.lastAt = at
	}
}

// pendingJoules materialises the energy of the span since the last
// commit — a pure read. Caller holds m.mu.
func (m *Meter) pendingJoules(at sim.Time) float64 {
	dt := at.Sub(m.lastAt).Seconds()
	if dt <= 0 || !m.on {
		return 0
	}
	return m.profile.At(m.util) * dt
}

// CurrentWatts returns the instantaneous draw.
func (m *Meter) CurrentWatts() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.on {
		return 0
	}
	return m.profile.At(m.util)
}

// On reports whether the device is powered.
func (m *Meter) On() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.on
}

// EnergyJoules returns the total energy consumed up to virtual time at:
// the committed total plus the materialised pending span. Reading is
// pure — it never re-anchors the integral.
func (m *Meter) EnergyJoules(at sim.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.joules + m.pendingJoules(at)
}

// EnergyWh returns the total energy in watt-hours up to at.
func (m *Meter) EnergyWh(at sim.Time) float64 { return m.EnergyJoules(at) / 3600 }

// CloudMeter aggregates many device meters: the PiCloud "run from a
// single trailing power socket board".
//
// Aggregation is hierarchical: meters attach under an integer group —
// the rack, for a fleet — and each group keeps a cached power sum and
// energy anchor that a member's state change invalidates. A total is
// therefore O(groups + members of dirty groups): on a 10⁶-node fleet
// where a sampling tick follows a handful of container events, the old
// flat walk touched a million meter locks per reading, the hierarchical
// walk touches 256 cached sub-meters and the one rack that changed.
type CloudMeter struct {
	mu     sync.Mutex
	meters map[string]*Meter
	groups map[int]*meterGroup
	// order caches the group iteration order (ascending group id);
	// summation must be order-stable or float rounding makes identical
	// runs differ in the last bit.
	order      []int
	orderStale bool
}

// meterGroup is one sub-meter: the per-rack aggregation unit.
type meterGroup struct {
	members []groupMember
	// membersStale defers the per-group name sort to the next reading
	// after attachments.
	membersStale bool
	// wattsDirty / energyDirty are set by member meters on any power
	// state change; the caches below are valid only while clear.
	wattsDirty  atomic.Bool
	energyDirty atomic.Bool
	// watts is Σ member CurrentWatts as of the last clean reading.
	watts float64
	// joules is Σ member EnergyJoules(at); while the group stays clean
	// the total extrapolates as joules + watts·Δt (the members are
	// piecewise-constant and unchanged since the anchor).
	joules float64
	at     sim.Time
}

type groupMember struct {
	name string
	m    *Meter
}

// sorted returns the group's members in stable name order.
func (g *meterGroup) sorted() []groupMember {
	if g.membersStale {
		sort.Slice(g.members, func(i, j int) bool { return g.members[i].name < g.members[j].name })
		g.membersStale = false
	}
	return g.members
}

// recomputeWatts refreshes the cached power sum from the members.
func (g *meterGroup) recomputeWatts() {
	total := 0.0
	for _, mm := range g.sorted() {
		total += mm.m.CurrentWatts()
	}
	g.watts = total
}

// energyAt returns the group's aggregate energy up to at, refreshing
// the anchor. A dirty group re-reads every member (each meter
// self-integrates exactly, whatever happened mid-interval); a clean
// group extrapolates from the anchor at its cached constant power. The
// watts cache is refreshed together with the energy anchor so a clean
// group's extrapolation can never use a power reading older than its
// anchor.
func (g *meterGroup) energyAt(at sim.Time) float64 {
	if g.energyDirty.Swap(false) || at < g.at {
		g.wattsDirty.Store(false)
		total := 0.0
		for _, mm := range g.sorted() {
			total += mm.m.EnergyJoules(at)
		}
		g.joules = total
		g.recomputeWatts()
		g.at = at
	} else if at > g.at {
		if g.wattsDirty.Swap(false) {
			g.recomputeWatts()
		}
		g.joules += g.watts * at.Sub(g.at).Seconds()
		g.at = at
	}
	return g.joules
}

// NewCloudMeter returns an empty aggregate meter.
func NewCloudMeter() *CloudMeter {
	return &CloudMeter{
		meters: make(map[string]*Meter),
		groups: make(map[int]*meterGroup),
	}
}

// Attach registers a device meter under a unique name, in sub-meter
// group 0. Fleets attach per rack with AttachGrouped.
func (c *CloudMeter) Attach(name string, m *Meter) error {
	return c.AttachGrouped(name, 0, m)
}

// AttachGrouped registers a device meter under a unique name in the
// given sub-meter group (the rack index, for a fleet). A meter reports
// to at most one CloudMeter.
func (c *CloudMeter) AttachGrouped(name string, group int, m *Meter) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.meters[name]; dup {
		return fmt.Errorf("energy: meter %q already attached", name)
	}
	c.meters[name] = m
	g := c.groups[group]
	if g == nil {
		g = &meterGroup{}
		c.groups[group] = g
		c.order = append(c.order, group)
		c.orderStale = true
	}
	g.members = append(g.members, groupMember{name: name, m: m})
	g.membersStale = true
	g.wattsDirty.Store(true)
	g.energyDirty.Store(true)
	m.mu.Lock()
	m.group = g
	m.mu.Unlock()
	return nil
}

// Meter returns the named device meter, or nil.
func (c *CloudMeter) Meter(name string) *Meter {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.meters[name]
}

// Names returns the attached device names in map order.
func (c *CloudMeter) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.meters))
	for n := range c.meters {
		out = append(out, n)
	}
	return out
}

// sortedGroups returns the group ids in stable ascending order. Caller
// holds c.mu.
func (c *CloudMeter) sortedGroups() []int {
	if c.orderStale {
		sort.Ints(c.order)
		c.orderStale = false
	}
	return c.order
}

// Groups returns the sub-meter group ids in ascending order.
func (c *CloudMeter) Groups() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, len(c.sortedGroups()))
	copy(out, c.order)
	return out
}

// GroupWatts returns the instantaneous draw of one sub-meter group
// (a rack, for a fleet), or 0 for an unknown group.
func (c *CloudMeter) GroupWatts(group int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[group]
	if g == nil {
		return 0
	}
	if g.wattsDirty.Swap(false) {
		g.recomputeWatts()
	}
	return g.watts
}

// TotalWatts returns the instantaneous aggregate draw: cached sub-meter
// sums, recomputed only for groups whose members changed state.
func (c *CloudMeter) TotalWatts() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0.0
	for _, id := range c.sortedGroups() {
		g := c.groups[id]
		if g.wattsDirty.Swap(false) {
			g.recomputeWatts()
		}
		total += g.watts
	}
	return total
}

// TotalEnergyJoules returns the aggregate energy consumed up to at:
// clean sub-meters extrapolate from their anchor, dirty ones re-read
// their members.
func (c *CloudMeter) TotalEnergyJoules(at sim.Time) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0.0
	for _, id := range c.sortedGroups() {
		total += c.groups[id].energyAt(at)
	}
	return total
}

// WriteState writes the power-accounting state up to virtual time at in
// a deterministic text form — one layer of the cross-layer kernel
// fingerprint behind core's Checkpoint/Resume. The capture is pure and
// exact: it sums each group's members directly (meters materialise
// their pending span without committing it), bypassing the extrapolating
// group caches, whose anchors legitimately depend on when totals were
// sampled. Two clouds that executed the same power-state history write
// the same bytes — per-group energy and draw as raw IEEE-754 bits, in
// stable ascending group order — regardless of who read what in
// between.
func (c *CloudMeter) WriteState(w io.Writer, at sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(w, "energy meters=%d groups=%d at=%d\n", len(c.meters), len(c.groups), int64(at))
	for _, id := range c.sortedGroups() {
		g := c.groups[id]
		joules, watts := 0.0, 0.0
		for _, mm := range g.sorted() {
			joules += mm.m.EnergyJoules(at)
			watts += mm.m.CurrentWatts()
		}
		fmt.Fprintf(w, "group %d joules=%016x watts=%016x members=%d\n",
			id, math.Float64bits(joules), math.Float64bits(watts), len(g.members))
	}
}

// Cooling models data-centre power/cooling overhead as a share of total
// facility power: cooling = Share × total, IT = (1-Share) × total.
type Cooling struct {
	// Share is the fraction of total facility power consumed by power and
	// cooling infrastructure. The paper reports 33% for Cloud DCs.
	Share float64
}

// DefaultCooling returns the paper's 33% model.
func DefaultCooling() Cooling { return Cooling{Share: DefaultCoolingShare} }

// OverheadWatts returns the cooling power needed for a given IT load.
// With share s, total = it/(1-s), so overhead = it·s/(1-s).
func (c Cooling) OverheadWatts(itWatts float64) float64 {
	if c.Share <= 0 {
		return 0
	}
	if c.Share >= 1 {
		panic("energy: cooling share must be below 1")
	}
	return itWatts * c.Share / (1 - c.Share)
}

// FacilityWatts returns total facility power for a given IT load.
func (c Cooling) FacilityWatts(itWatts float64) float64 {
	return itWatts + c.OverheadWatts(itWatts)
}

// PUE returns the power-usage-effectiveness implied by the share:
// facility/IT.
func (c Cooling) PUE() float64 {
	if c.Share >= 1 {
		panic("energy: cooling share must be below 1")
	}
	return 1 / (1 - c.Share)
}

// SocketBoard models the paper's single trailing power socket: a UK
// 13 A / 230 V strip delivering about 3 kW.
type SocketBoard struct {
	VoltsRMS float64
	MaxAmps  float64
}

// UKTrailingSocket returns the standard UK strip.
func UKTrailingSocket() SocketBoard { return SocketBoard{VoltsRMS: 230, MaxAmps: 13} }

// MaxWatts returns the socket's capacity.
func (s SocketBoard) MaxWatts() float64 { return s.VoltsRMS * s.MaxAmps }

// CanSupply reports whether the socket can feed the given load.
func (s SocketBoard) CanSupply(watts float64) bool { return watts <= s.MaxWatts() }
