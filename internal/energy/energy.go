// Package energy implements the power-accounting layer of the PiCloud:
// per-device meters that integrate a piecewise-constant power signal over
// virtual time, a whole-cloud meter (the "single trailing power socket"
// of Section III), and the data-centre cooling model behind Table I's
// cooling column and the paper's "33% of total power" claim.
package energy

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/hw"
	"repro/internal/sim"
)

// DefaultCoolingShare is the fraction of total DC power consumed by power
// and cooling infrastructure, "reportedly 33%" (Section IV).
const DefaultCoolingShare = 0.33

// Meter integrates the energy drawn by one device. Power is treated as
// piecewise-constant between SetUtilisation calls on the virtual clock.
// Meter is safe for concurrent use so HTTP handlers can read it.
type Meter struct {
	mu      sync.Mutex
	profile hw.PowerProfile
	lastAt  sim.Time
	util    float64
	joules  float64
	on      bool
}

// NewMeter returns a meter for a device with the given power profile.
// The device starts powered off at the given time.
func NewMeter(profile hw.PowerProfile, at sim.Time) *Meter {
	return &Meter{profile: profile, lastAt: at}
}

// PowerOn marks the device powered with zero utilisation.
func (m *Meter) PowerOn(at sim.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accumulate(at)
	m.on = true
	m.util = 0
}

// PowerOff marks the device unpowered; it draws nothing until PowerOn.
func (m *Meter) PowerOff(at sim.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accumulate(at)
	m.on = false
	m.util = 0
}

// SetUtilisation records a change in CPU utilisation at virtual time at.
// Calls must carry non-decreasing times.
func (m *Meter) SetUtilisation(at sim.Time, util float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accumulate(at)
	m.util = util
}

// accumulate folds the signal up to at into the running total.
// Caller holds m.mu.
func (m *Meter) accumulate(at sim.Time) {
	dt := at.Sub(m.lastAt).Seconds()
	if dt > 0 && m.on {
		m.joules += m.profile.At(m.util) * dt
	}
	if at > m.lastAt {
		m.lastAt = at
	}
}

// CurrentWatts returns the instantaneous draw.
func (m *Meter) CurrentWatts() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.on {
		return 0
	}
	return m.profile.At(m.util)
}

// On reports whether the device is powered.
func (m *Meter) On() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.on
}

// EnergyJoules returns the total energy consumed up to virtual time at.
func (m *Meter) EnergyJoules(at sim.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accumulate(at)
	return m.joules
}

// EnergyWh returns the total energy in watt-hours up to at.
func (m *Meter) EnergyWh(at sim.Time) float64 { return m.EnergyJoules(at) / 3600 }

// CloudMeter aggregates many device meters: the PiCloud "run from a
// single trailing power socket board".
type CloudMeter struct {
	mu     sync.Mutex
	meters map[string]*Meter
	// sorted caches the stable summation order (see sortedNames); it is
	// rebuilt lazily after Attach so a 10⁵-meter fleet does not re-sort
	// on every power reading.
	sorted      []string
	sortedStale bool
}

// NewCloudMeter returns an empty aggregate meter.
func NewCloudMeter() *CloudMeter {
	return &CloudMeter{meters: make(map[string]*Meter)}
}

// Attach registers a device meter under a unique name.
func (c *CloudMeter) Attach(name string, m *Meter) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.meters[name]; dup {
		return fmt.Errorf("energy: meter %q already attached", name)
	}
	c.meters[name] = m
	c.sorted = append(c.sorted, name)
	c.sortedStale = true
	return nil
}

// Meter returns the named device meter, or nil.
func (c *CloudMeter) Meter(name string) *Meter {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.meters[name]
}

// Names returns the attached device names in map order.
func (c *CloudMeter) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.meters))
	for n := range c.meters {
		out = append(out, n)
	}
	return out
}

// sortedNames returns meter names in stable order. Summation must be
// order-stable or float rounding makes identical runs differ in the last
// bit (map iteration order is random). The order is cached and re-sorted
// only after new attachments. Caller holds c.mu.
func (c *CloudMeter) sortedNames() []string {
	if c.sortedStale {
		sort.Strings(c.sorted)
		c.sortedStale = false
	}
	return c.sorted
}

// TotalWatts returns the instantaneous aggregate draw.
func (c *CloudMeter) TotalWatts() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0.0
	for _, n := range c.sortedNames() {
		total += c.meters[n].CurrentWatts()
	}
	return total
}

// TotalEnergyJoules returns the aggregate energy consumed up to at.
func (c *CloudMeter) TotalEnergyJoules(at sim.Time) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0.0
	for _, n := range c.sortedNames() {
		total += c.meters[n].EnergyJoules(at)
	}
	return total
}

// Cooling models data-centre power/cooling overhead as a share of total
// facility power: cooling = Share × total, IT = (1-Share) × total.
type Cooling struct {
	// Share is the fraction of total facility power consumed by power and
	// cooling infrastructure. The paper reports 33% for Cloud DCs.
	Share float64
}

// DefaultCooling returns the paper's 33% model.
func DefaultCooling() Cooling { return Cooling{Share: DefaultCoolingShare} }

// OverheadWatts returns the cooling power needed for a given IT load.
// With share s, total = it/(1-s), so overhead = it·s/(1-s).
func (c Cooling) OverheadWatts(itWatts float64) float64 {
	if c.Share <= 0 {
		return 0
	}
	if c.Share >= 1 {
		panic("energy: cooling share must be below 1")
	}
	return itWatts * c.Share / (1 - c.Share)
}

// FacilityWatts returns total facility power for a given IT load.
func (c Cooling) FacilityWatts(itWatts float64) float64 {
	return itWatts + c.OverheadWatts(itWatts)
}

// PUE returns the power-usage-effectiveness implied by the share:
// facility/IT.
func (c Cooling) PUE() float64 {
	if c.Share >= 1 {
		panic("energy: cooling share must be below 1")
	}
	return 1 / (1 - c.Share)
}

// SocketBoard models the paper's single trailing power socket: a UK
// 13 A / 230 V strip delivering about 3 kW.
type SocketBoard struct {
	VoltsRMS float64
	MaxAmps  float64
}

// UKTrailingSocket returns the standard UK strip.
func UKTrailingSocket() SocketBoard { return SocketBoard{VoltsRMS: 230, MaxAmps: 13} }

// MaxWatts returns the socket's capacity.
func (s SocketBoard) MaxWatts() float64 { return s.VoltsRMS * s.MaxAmps }

// CanSupply reports whether the socket can feed the given load.
func (s SocketBoard) CanSupply(watts float64) bool { return watts <= s.MaxWatts() }
