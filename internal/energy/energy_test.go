package energy

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
)

func at(sec int) sim.Time { return sim.Time(time.Duration(sec) * time.Second) }

func TestMeterOffDrawsNothing(t *testing.T) {
	m := NewMeter(hw.PiModelB().Power, 0)
	if m.CurrentWatts() != 0 {
		t.Fatalf("off meter draws %v W", m.CurrentWatts())
	}
	if got := m.EnergyJoules(at(100)); got != 0 {
		t.Fatalf("off meter accumulated %v J", got)
	}
}

func TestMeterIdleEnergy(t *testing.T) {
	p := hw.PowerProfile{IdleWatts: 2, PeakWatts: 4}
	m := NewMeter(p, 0)
	m.PowerOn(0)
	if got := m.EnergyJoules(at(10)); math.Abs(got-20) > 1e-9 {
		t.Fatalf("10s idle at 2W = %v J, want 20", got)
	}
}

func TestMeterPiecewiseIntegration(t *testing.T) {
	p := hw.PowerProfile{IdleWatts: 2, PeakWatts: 4}
	m := NewMeter(p, 0)
	m.PowerOn(0)
	m.SetUtilisation(at(5), 1.0)  // 5s at 2W = 10J
	m.SetUtilisation(at(10), 0.5) // 5s at 4W = 20J
	m.PowerOff(at(20))            // 10s at 3W = 30J
	got := m.EnergyJoules(at(30)) // then off: nothing
	if math.Abs(got-60) > 1e-9 {
		t.Fatalf("energy = %v J, want 60", got)
	}
	if m.CurrentWatts() != 0 {
		t.Fatalf("powered-off draw = %v", m.CurrentWatts())
	}
	if m.On() {
		t.Fatal("On() after PowerOff")
	}
}

func TestMeterWh(t *testing.T) {
	p := hw.PowerProfile{IdleWatts: 3.5, PeakWatts: 3.5}
	m := NewMeter(p, 0)
	m.PowerOn(0)
	if got := m.EnergyWh(at(3600)); math.Abs(got-3.5) > 1e-9 {
		t.Fatalf("1h at 3.5W = %v Wh, want 3.5", got)
	}
}

// Property: energy is non-decreasing in time regardless of the
// utilisation signal.
func TestPropertyEnergyMonotonic(t *testing.T) {
	f := func(utils []float64) bool {
		m := NewMeter(hw.PiModelB().Power, 0)
		m.PowerOn(0)
		prev := 0.0
		now := 0
		for _, u := range utils {
			if math.IsNaN(u) {
				continue
			}
			now++
			m.SetUtilisation(at(now), u)
			e := m.EnergyJoules(at(now))
			if e < prev-1e-9 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCloudMeterAggregation(t *testing.T) {
	cm := NewCloudMeter()
	p := hw.PowerProfile{IdleWatts: 2, PeakWatts: 3.5}
	for i := 0; i < 3; i++ {
		m := NewMeter(p, 0)
		m.PowerOn(0)
		if err := cm.Attach(string(rune('a'+i)), m); err != nil {
			t.Fatal(err)
		}
	}
	if got := cm.TotalWatts(); math.Abs(got-6) > 1e-9 {
		t.Fatalf("TotalWatts = %v, want 6", got)
	}
	if got := cm.TotalEnergyJoules(at(10)); math.Abs(got-60) > 1e-9 {
		t.Fatalf("TotalEnergy = %v, want 60", got)
	}
	if len(cm.Names()) != 3 {
		t.Fatalf("Names = %v", cm.Names())
	}
	if cm.Meter("a") == nil || cm.Meter("zzz") != nil {
		t.Fatal("Meter lookup wrong")
	}
}

// flatTotals recomputes the aggregate the pre-hierarchical way: walk
// every meter. The reference the cached sub-meter path must match.
func flatTotals(cm *CloudMeter, at sim.Time) (watts, joules float64) {
	names := cm.Names()
	sort.Strings(names)
	for _, n := range names {
		watts += cm.Meter(n).CurrentWatts()
		joules += cm.Meter(n).EnergyJoules(at)
	}
	return watts, joules
}

// TestCloudMeterHierarchicalTotals drives grouped meters through power
// cycles and utilisation changes, reading totals at every step: the
// cached sub-meter path must track the flat walk, and a member change
// must invalidate exactly its group's caches.
func TestCloudMeterHierarchicalTotals(t *testing.T) {
	cm := NewCloudMeter()
	p := hw.PowerProfile{IdleWatts: 2, PeakWatts: 4}
	meters := make([]*Meter, 12)
	for i := range meters {
		m := NewMeter(p, 0)
		m.PowerOn(0)
		meters[i] = m
		if err := cm.AttachGrouped(fmt.Sprintf("pi-%02d", i), i/4, m); err != nil {
			t.Fatal(err)
		}
	}
	check := func(step string, now sim.Time) {
		t.Helper()
		wantW, _ := flatTotals(cm, now)
		if gotW := cm.TotalWatts(); math.Abs(gotW-wantW) > 1e-9*math.Max(wantW, 1) {
			t.Fatalf("%s: TotalWatts = %v, flat sum %v", step, gotW, wantW)
		}
		_, wantJ := flatTotals(cm, now)
		if gotJ := cm.TotalEnergyJoules(now); math.Abs(gotJ-wantJ) > 1e-9*math.Max(wantJ, 1) {
			t.Fatalf("%s: TotalEnergyJoules = %v, flat sum %v", step, gotJ, wantJ)
		}
	}
	check("initial", at(1))
	// Utilisation spike in group 1 only.
	for i := 4; i < 8; i++ {
		meters[i].SetUtilisation(at(5), 1)
	}
	check("group-1 busy", at(10))
	// Idle stretch: totals are extrapolated from clean caches.
	check("idle stretch", at(100))
	// Power-cycle one board in group 2.
	meters[9].PowerOff(at(120))
	check("board off", at(130))
	meters[9].PowerOn(at(140))
	check("board back", at(150))
	// A fresh late attachment joins group 0.
	late := NewMeter(p, at(150))
	late.PowerOn(at(150))
	if err := cm.AttachGrouped("pi-99", 0, late); err != nil {
		t.Fatal(err)
	}
	check("late attach", at(160))
}

// TestCloudMeterGroupCacheStaysClean pins the O(dirty groups) claim:
// reading totals twice with no member changes in between must not
// re-read any meter (the group caches answer).
func TestCloudMeterGroupCacheStaysClean(t *testing.T) {
	cm := NewCloudMeter()
	p := hw.PowerProfile{IdleWatts: 3, PeakWatts: 3}
	m := NewMeter(p, 0)
	m.PowerOn(0)
	if err := cm.AttachGrouped("pi-00", 0, m); err != nil {
		t.Fatal(err)
	}
	if got := cm.TotalWatts(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("TotalWatts = %v", got)
	}
	g := m.group
	if g == nil {
		t.Fatal("meter not wired to its group")
	}
	if g.wattsDirty.Load() {
		t.Fatal("group watts cache still dirty after a read")
	}
	_ = cm.TotalEnergyJoules(at(10))
	if g.energyDirty.Load() {
		t.Fatal("group energy cache still dirty after a read")
	}
	// Extrapolated second read: 10 more seconds at 3 W.
	if got := cm.TotalEnergyJoules(at(20)); math.Abs(got-60) > 1e-9 {
		t.Fatalf("extrapolated energy = %v, want 60", got)
	}
	// A member change re-dirties exactly this group.
	m.SetUtilisation(at(25), 0.5)
	if !g.wattsDirty.Load() || !g.energyDirty.Load() {
		t.Fatal("member change did not invalidate the group caches")
	}
	if got := cm.TotalEnergyJoules(at(30)); math.Abs(got-90) > 1e-9 {
		t.Fatalf("energy after re-read = %v, want 90 (flat profile)", got)
	}
}

func TestCloudMeterDuplicateAttach(t *testing.T) {
	cm := NewCloudMeter()
	m := NewMeter(hw.PiModelB().Power, 0)
	if err := cm.Attach("x", m); err != nil {
		t.Fatal(err)
	}
	if err := cm.Attach("x", m); err == nil {
		t.Fatal("duplicate attach accepted")
	}
}

func TestPaperPowerClaims(t *testing.T) {
	// Table I: 56 Pis at peak 3.5W = 196W; 56 x86 at 180W = 10,080W.
	pi := hw.PiModelB().Power
	if got := pi.At(1) * 56; math.Abs(got-196) > 1e-9 {
		t.Errorf("56 Pis peak = %v W, Table I says 196", got)
	}
	x86 := hw.X86Server().Power
	if got := x86.At(1) * 56; math.Abs(got-10080) > 1e-9 {
		t.Errorf("56 x86 peak = %v W, Table I says 10,080", got)
	}
	// Section III: the whole PiCloud runs from a single trailing socket.
	sock := UKTrailingSocket()
	if !sock.CanSupply(196) {
		t.Error("UK socket cannot supply the PiCloud, contradicting the paper")
	}
	if sock.CanSupply(10080) {
		t.Error("UK socket should not supply the x86 testbed")
	}
}

func TestCooling(t *testing.T) {
	c := DefaultCooling()
	if c.Share != 0.33 {
		t.Fatalf("share = %v, paper says 33%%", c.Share)
	}
	it := 670.0
	total := c.FacilityWatts(it)
	// Cooling must be 33% of the total facility power.
	if got := c.OverheadWatts(it) / total; math.Abs(got-0.33) > 1e-9 {
		t.Fatalf("cooling share of total = %v, want 0.33", got)
	}
	if got := c.PUE(); math.Abs(got-1/(1-0.33)) > 1e-12 {
		t.Fatalf("PUE = %v", got)
	}
	if (Cooling{Share: 0}).OverheadWatts(100) != 0 {
		t.Fatal("zero share should add no overhead")
	}
}

func TestCoolingInvalidShare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for share >= 1")
		}
	}()
	_ = Cooling{Share: 1}.OverheadWatts(1)
}

func BenchmarkMeterSetUtilisation(b *testing.B) {
	m := NewMeter(hw.PiModelB().Power, 0)
	m.PowerOn(0)
	for i := 0; i < b.N; i++ {
		m.SetUtilisation(sim.Time(time.Duration(i)*time.Microsecond), float64(i%100)/100)
	}
}
