package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBoardSpecsValidate(t *testing.T) {
	for _, b := range []BoardSpec{PiModelA(), PiModelB(), PiModelBRev2(), X86Server()} {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Model, err)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*BoardSpec)
	}{
		{"no model", func(b *BoardSpec) { b.Model = "" }},
		{"zero cores", func(b *BoardSpec) { b.Cores = 0 }},
		{"zero cpu", func(b *BoardSpec) { b.CPU = 0 }},
		{"zero mem", func(b *BoardSpec) { b.MemBytes = 0 }},
		{"zero nic", func(b *BoardSpec) { b.NIC.BitsPerSecond = 0 }},
		{"peak below idle", func(b *BoardSpec) { b.Power.PeakWatts = b.Power.IdleWatts - 1 }},
		{"negative cost", func(b *BoardSpec) { b.UnitCostUSD = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := PiModelB()
			c.mutate(&b)
			if err := b.Validate(); err == nil {
				t.Fatalf("Validate accepted spec mutated by %q", c.name)
			}
		})
	}
}

// Table I numbers are model parameters; pin them.
func TestPaperNumbersPinned(t *testing.T) {
	pi := PiModelB()
	if pi.UnitCostUSD != 35 {
		t.Errorf("Pi unit cost = $%v, paper says $35", pi.UnitCostUSD)
	}
	if pi.Power.PeakWatts != 3.5 {
		t.Errorf("Pi peak power = %vW, paper says 3.5W", pi.Power.PeakWatts)
	}
	if pi.MemBytes != 256*MiB {
		t.Errorf("Pi RAM = %d, paper says 256MB", pi.MemBytes)
	}
	if pi.Storage.CapacityBytes != 16*GiB {
		t.Errorf("Pi SD = %d, paper says 16GB", pi.Storage.CapacityBytes)
	}
	if pi.NeedsCooling {
		t.Error("PiCloud needs no cooling per Table I")
	}
	x86 := X86Server()
	if x86.UnitCostUSD != 2000 {
		t.Errorf("x86 unit cost = $%v, paper says $2,000", x86.UnitCostUSD)
	}
	if x86.Power.PeakWatts != 180 {
		t.Errorf("x86 peak power = %vW, paper says 180W", x86.Power.PeakWatts)
	}
	if !x86.NeedsCooling {
		t.Error("x86 testbed needs cooling per Table I")
	}
	rev2 := PiModelBRev2()
	if rev2.MemBytes != 2*pi.MemBytes {
		t.Error("rev2 should double RAM (Section IV)")
	}
	if rev2.UnitCostUSD != pi.UnitCostUSD {
		t.Error("rev2 kept the same price (Section IV)")
	}
	if PiModelA().UnitCostUSD != 25 {
		t.Error("Model A is the $25 board")
	}
}

func TestPowerProfile(t *testing.T) {
	p := PowerProfile{IdleWatts: 2, PeakWatts: 4}
	cases := []struct {
		util, want float64
	}{
		{0, 2}, {0.5, 3}, {1, 4}, {-1, 2}, {2, 4},
	}
	for _, c := range cases {
		if got := p.At(c.util); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.util, got, c.want)
		}
	}
}

// Property: power is monotonic in utilisation and bounded by [idle, peak].
func TestPropertyPowerMonotonic(t *testing.T) {
	p := PiModelB().Power
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		pa, pb := p.At(lo), p.At(hi)
		return pa <= pb && pa >= p.IdleWatts-1e-9 && pb <= p.PeakWatts+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSDCardTimes(t *testing.T) {
	sd := SanDisk16GB()
	if got := sd.ReadTimeSeconds(20 * MiB); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("read 20MiB = %vs, want 1s", got)
	}
	if got := sd.WriteTimeSeconds(10 * MiB); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("write 10MiB = %vs, want 1s", got)
	}
	var zero SDCard
	if zero.ReadTimeSeconds(1) != 0 || zero.WriteTimeSeconds(1) != 0 {
		t.Error("zero-rate card should report 0 time, not divide by zero")
	}
}

func TestBCM2835(t *testing.T) {
	soc := BCM2835()
	if soc.CoreISA != ArchARMv6 {
		t.Errorf("ISA = %v, want armv6", soc.CoreISA)
	}
	if soc.ClockMHz != 700 {
		t.Errorf("clock = %d, want 700", soc.ClockMHz)
	}
	if len(soc.Peripherals) < 4 {
		t.Error("BCM2835 should list its multimedia peripherals (Section IV)")
	}
}

func TestPiBoM(t *testing.T) {
	items := PiBoM()
	total := BoMTotal(items)
	pi := PiModelB()
	if total <= 0 || total >= pi.UnitCostUSD {
		t.Errorf("BoM total $%v should be positive and below the $%v retail price", total, pi.UnitCostUSD)
	}
	// The paper estimates the processor as the most expensive component
	// at around $10.
	max := items[0]
	for _, it := range items {
		if it.CostUSD > max.CostUSD {
			max = it
		}
	}
	if max.Component != "BCM2835 processor" {
		t.Errorf("most expensive BoM item = %q, paper says the processor", max.Component)
	}
	if max.CostUSD != 10 {
		t.Errorf("processor cost = $%v, paper estimates $10", max.CostUSD)
	}
}

func TestArchString(t *testing.T) {
	if ArchARMv6.String() != "armv6" || ArchX86_64.String() != "x86_64" {
		t.Error("arch names wrong")
	}
	if Arch(99).String() != "arch(99)" {
		t.Error("unknown arch should format numerically")
	}
}
