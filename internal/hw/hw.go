// Package hw models the hardware of the PiCloud and of the x86 testbed it
// is compared against in Table I of the paper: boards (Raspberry Pi
// Model A/B, a commodity x86 server), the BCM2835 SoC, SD-card storage
// and the network interface.
//
// Capacities carry the paper's published numbers (256 MB RAM on the
// original Model B, 100 Mb/s Ethernet, 16 GB SanDisk SD card, 3.5 W power
// draw, $35 unit cost) so that resource contention in the simulation
// appears at the same points it would on the physical testbed.
package hw

import (
	"fmt"
)

// Byte sizes.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// Arch identifies an instruction-set architecture.
type Arch int

// Architectures present in the paper's comparison.
const (
	ArchARMv6 Arch = iota + 1
	ArchX86_64
)

// String returns the conventional name of the architecture.
func (a Arch) String() string {
	switch a {
	case ArchARMv6:
		return "armv6"
	case ArchX86_64:
		return "x86_64"
	default:
		return fmt.Sprintf("arch(%d)", int(a))
	}
}

// MIPS expresses compute capacity in millions of (Dhrystone-like) work
// units per second. Workload CPU costs are expressed in MI (millions of
// work units), so time = MI / MIPS.
type MIPS float64

// MI is an amount of CPU work in millions of work units.
type MI float64

// PowerProfile is the linear utilisation→watts model used throughout the
// energy accounting: draw = Idle + (Peak-Idle)·util.
type PowerProfile struct {
	IdleWatts float64
	PeakWatts float64
}

// At returns the power draw in watts at CPU utilisation util ∈ [0,1].
// Utilisation outside the range is clamped.
func (p PowerProfile) At(util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return p.IdleWatts + (p.PeakWatts-p.IdleWatts)*util
}

// SDCard models the flash storage each Pi boots from: capacity and
// sequential bandwidth. Class-10 SD cards of the era sustain roughly
// 20 MB/s reads and 10 MB/s writes.
type SDCard struct {
	CapacityBytes  int64
	ReadBytesPerS  int64
	WriteBytesPerS int64
}

// SanDisk16GB is the card the paper states every Pi runs from.
func SanDisk16GB() SDCard {
	return SDCard{
		CapacityBytes:  16 * GiB,
		ReadBytesPerS:  20 * MiB,
		WriteBytesPerS: 10 * MiB,
	}
}

// ServerDisk is the SATA disk assumed in the x86 comparison platform.
func ServerDisk() SDCard {
	return SDCard{
		CapacityBytes:  1000 * GiB,
		ReadBytesPerS:  150 * MiB,
		WriteBytesPerS: 120 * MiB,
	}
}

// ReadTimeSeconds returns the seconds needed to read n bytes sequentially.
func (s SDCard) ReadTimeSeconds(n int64) float64 {
	if s.ReadBytesPerS <= 0 {
		return 0
	}
	return float64(n) / float64(s.ReadBytesPerS)
}

// WriteTimeSeconds returns the seconds needed to write n bytes sequentially.
func (s SDCard) WriteTimeSeconds(n int64) float64 {
	if s.WriteBytesPerS <= 0 {
		return 0
	}
	return float64(n) / float64(s.WriteBytesPerS)
}

// NIC describes a network interface.
type NIC struct {
	BitsPerSecond int64
}

// BoMItem is one line of a bill-of-materials estimate.
type BoMItem struct {
	Component string
	CostUSD   float64
}

// SoC describes a system-on-chip, including the integrated peripherals
// the paper's Section IV argues could be cut for a DC-tuned part.
type SoC struct {
	Name        string
	CoreISA     Arch
	Cores       int
	ClockMHz    int
	Peripherals []string
}

// BCM2835 is the Broadcom multimedia SoC at the heart of the Raspberry
// Pi, "primarily designed for multimedia-capable embedded devices".
func BCM2835() SoC {
	return SoC{
		Name:     "BCM2835",
		CoreISA:  ArchARMv6,
		Cores:    1,
		ClockMHz: 700,
		Peripherals: []string{
			"dual-core multimedia co-processor",
			"HD video encode/decode",
			"image sensing pipeline",
			"GPU",
			"video display unit",
		},
	}
}

// BoardSpec describes a complete machine: the SKU the simulated node
// hardware is instantiated from.
type BoardSpec struct {
	Model       string
	Arch        Arch
	Cores       int
	CPU         MIPS // aggregate capacity across cores
	MemBytes    int64
	NIC         NIC
	Storage     SDCard
	Power       PowerProfile
	UnitCostUSD float64
	// NeedsCooling records whether a 56-unit deployment of this board
	// requires dedicated cooling infrastructure (Table I, last column).
	NeedsCooling bool
}

// Validate reports whether the spec is internally consistent.
func (b BoardSpec) Validate() error {
	switch {
	case b.Model == "":
		return fmt.Errorf("hw: board has no model name")
	case b.Cores <= 0:
		return fmt.Errorf("hw: board %q has %d cores", b.Model, b.Cores)
	case b.CPU <= 0:
		return fmt.Errorf("hw: board %q has non-positive CPU capacity", b.Model)
	case b.MemBytes <= 0:
		return fmt.Errorf("hw: board %q has non-positive memory", b.Model)
	case b.NIC.BitsPerSecond <= 0:
		return fmt.Errorf("hw: board %q has non-positive NIC rate", b.Model)
	case b.Power.PeakWatts < b.Power.IdleWatts:
		return fmt.Errorf("hw: board %q peak power below idle", b.Model)
	case b.UnitCostUSD < 0:
		return fmt.Errorf("hw: board %q has negative cost", b.Model)
	}
	return nil
}

// PiModelB is the board the PiCloud is built from: the $35 Raspberry Pi
// Model B with 256 MB RAM (original revision), 100 Mb/s Ethernet, a 16 GB
// SD card, drawing at most 3.5 W. The ARM1176JZF-S at 700 MHz delivers
// roughly 875 DMIPS (1.25 DMIPS/MHz).
func PiModelB() BoardSpec {
	return BoardSpec{
		Model:        "raspberry-pi-model-b",
		Arch:         ArchARMv6,
		Cores:        1,
		CPU:          875,
		MemBytes:     256 * MiB,
		NIC:          NIC{BitsPerSecond: 100_000_000},
		Storage:      SanDisk16GB(),
		Power:        PowerProfile{IdleWatts: 2.1, PeakWatts: 3.5},
		UnitCostUSD:  35,
		NeedsCooling: false,
	}
}

// PiModelBRev2 is the Model B after the Raspberry Pi Foundation "doubled
// the RAM size on every Raspberry Pi while keeping the same price"
// (Section IV).
func PiModelBRev2() BoardSpec {
	b := PiModelB()
	b.Model = "raspberry-pi-model-b-rev2"
	b.MemBytes = 512 * MiB
	return b
}

// PiModelA is the $25 entry board the paper mentions, with less RAM and
// fewer I/O ports than the Model B.
func PiModelA() BoardSpec {
	b := PiModelB()
	b.Model = "raspberry-pi-model-a"
	b.UnitCostUSD = 25
	// Model A has no onboard Ethernet; a USB adapter is assumed so it
	// can still participate in a cluster, at reduced throughput.
	b.NIC = NIC{BitsPerSecond: 50_000_000}
	b.Power = PowerProfile{IdleWatts: 1.2, PeakWatts: 2.5}
	return b
}

// X86Server is the commodity server platform of Table I: a $2,000 box
// drawing 180 W that needs machine-room cooling. A dual-socket 2013-era
// Xeon delivers on the order of 150k DMIPS.
func X86Server() BoardSpec {
	return BoardSpec{
		Model:        "commodity-x86-server",
		Arch:         ArchX86_64,
		Cores:        16,
		CPU:          150_000,
		MemBytes:     32 * GiB,
		NIC:          NIC{BitsPerSecond: 1_000_000_000},
		Storage:      ServerDisk(),
		Power:        PowerProfile{IdleWatts: 90, PeakWatts: 180},
		UnitCostUSD:  2000,
		NeedsCooling: true,
	}
}

// PiBoM returns the Section IV bill-of-materials estimate for the
// Raspberry Pi: the BCM2835 as the most expensive component at around
// $10, followed by the PCB, RAM, Ethernet connector and the remaining
// parts. The exact BoM is under NDA; these are the paper's inferences.
func PiBoM() []BoMItem {
	return []BoMItem{
		{Component: "BCM2835 processor", CostUSD: 10.0},
		{Component: "printed circuit board", CostUSD: 5.0},
		{Component: "256MB RAM (PoP)", CostUSD: 4.5},
		{Component: "Ethernet connector + PHY", CostUSD: 3.5},
		{Component: "power regulation", CostUSD: 2.0},
		{Component: "connectors (HDMI, USB, GPIO)", CostUSD: 3.0},
		{Component: "passives and assembly", CostUSD: 4.0},
	}
}

// BoMTotal sums a bill of materials.
func BoMTotal(items []BoMItem) float64 {
	total := 0.0
	for _, it := range items {
		total += it.CostUSD
	}
	return total
}
