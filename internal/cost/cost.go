// Package cost implements the economics of Table I: the cost/power/
// cooling comparison between a 56-server commodity-x86 testbed and the
// PiCloud, the Section IV bill-of-materials analysis, and scale-out cost
// curves for larger deployments.
package cost

import (
	"fmt"
	"strings"

	"repro/internal/energy"
	"repro/internal/hw"
)

// Platform is one column of the comparison.
type Platform struct {
	Name  string
	Board hw.BoardSpec
}

// Testbed is the x86 platform of Table I.
func Testbed() Platform { return Platform{Name: "Testbed", Board: hw.X86Server()} }

// PiCloud is the Raspberry Pi platform of Table I.
func PiCloud() Platform { return Platform{Name: "PiCloud", Board: hw.PiModelB()} }

// Row is one row of Table I.
type Row struct {
	Platform     string
	Servers      int
	TotalCostUSD float64
	UnitCostUSD  float64
	TotalPeakW   float64
	UnitPeakW    float64
	NeedsCooling bool
}

// RowFor computes a platform's row at a given scale.
func RowFor(p Platform, servers int) Row {
	return Row{
		Platform:     p.Name,
		Servers:      servers,
		TotalCostUSD: p.Board.UnitCostUSD * float64(servers),
		UnitCostUSD:  p.Board.UnitCostUSD,
		TotalPeakW:   p.Board.Power.PeakWatts * float64(servers),
		UnitPeakW:    p.Board.Power.PeakWatts,
		NeedsCooling: p.Board.NeedsCooling,
	}
}

// TableI reproduces the paper's table for n servers (the paper uses 56).
func TableI(servers int) []Row {
	return []Row{RowFor(Testbed(), servers), RowFor(PiCloud(), servers)}
}

// FormatTableI renders rows in the paper's layout.
func FormatTableI(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s  %-22s  %-22s  %s\n", "", "Server", "Power", "Needs Cooling?")
	for _, r := range rows {
		cool := "No"
		if r.NeedsCooling {
			cool = "Yes"
		}
		fmt.Fprintf(&b, "%-8s  $%s (@$%.0f)  %sW/h (@%.1fW/h)  %s\n",
			r.Platform, formatThousands(r.TotalCostUSD), r.UnitCostUSD,
			formatThousands(r.TotalPeakW), r.UnitPeakW, cool)
	}
	return b.String()
}

// formatThousands renders 10080 as "10,080".
func formatThousands(v float64) string {
	s := fmt.Sprintf("%.0f", v)
	n := len(s)
	if n <= 3 {
		return s
	}
	var b strings.Builder
	lead := n % 3
	if lead > 0 {
		b.WriteString(s[:lead])
		if n > lead {
			b.WriteString(",")
		}
	}
	for i := lead; i < n; i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < n {
			b.WriteString(",")
		}
	}
	return b.String()
}

// CostRatio returns testbed cost / PiCloud cost at a given scale — the
// paper's "several orders of magnitude smaller" claim.
func CostRatio(servers int) float64 {
	t := RowFor(Testbed(), servers)
	p := RowFor(PiCloud(), servers)
	return t.TotalCostUSD / p.TotalCostUSD
}

// PowerRatio returns testbed peak power / PiCloud peak power.
func PowerRatio(servers int) float64 {
	t := RowFor(Testbed(), servers)
	p := RowFor(PiCloud(), servers)
	return t.TotalPeakW / p.TotalPeakW
}

// AnnualEnergyCost estimates a platform's yearly electricity bill at the
// given average utilisation and tariff, including cooling overhead when
// the platform needs it (the 33% share of Section IV).
func AnnualEnergyCost(p Platform, servers int, avgUtil, usdPerKWh float64) float64 {
	watts := p.Board.Power.At(avgUtil) * float64(servers)
	if p.Board.NeedsCooling {
		watts = energy.DefaultCooling().FacilityWatts(watts)
	}
	hours := 24.0 * 365.0
	return watts / 1000 * hours * usdPerKWh
}

// BoMSummary reports the Section IV component-cost analysis: the
// estimated build cost of a Pi and the share of it attributable to
// multimedia peripherals a DC-tuned SoC could shed.
type BoMSummary struct {
	Items      []hw.BoMItem
	TotalUSD   float64
	RetailUSD  float64
	MarginUSD  float64
	SoCCostUSD float64
}

// AnalyseBoM computes the summary.
func AnalyseBoM() BoMSummary {
	items := hw.PiBoM()
	total := hw.BoMTotal(items)
	retail := hw.PiModelB().UnitCostUSD
	soc := 0.0
	for _, it := range items {
		if strings.Contains(it.Component, "processor") {
			soc = it.CostUSD
		}
	}
	return BoMSummary{
		Items:      items,
		TotalUSD:   total,
		RetailUSD:  retail,
		MarginUSD:  retail - total,
		SoCCostUSD: soc,
	}
}

// ScalePoint is one point on the scale-out curve.
type ScalePoint struct {
	Servers        int
	TestbedCostUSD float64
	PiCloudCostUSD float64
	TestbedPeakW   float64
	PiCloudPeakW   float64
}

// ScaleCurve computes cost/power at multiple scales (e.g. 56 → 10,000
// servers, the "tens of thousands of networked machines" of the
// abstract).
func ScaleCurve(scales []int) []ScalePoint {
	out := make([]ScalePoint, 0, len(scales))
	for _, n := range scales {
		t, p := RowFor(Testbed(), n), RowFor(PiCloud(), n)
		out = append(out, ScalePoint{
			Servers:        n,
			TestbedCostUSD: t.TotalCostUSD,
			PiCloudCostUSD: p.TotalCostUSD,
			TestbedPeakW:   t.TotalPeakW,
			PiCloudPeakW:   p.TotalPeakW,
		})
	}
	return out
}
