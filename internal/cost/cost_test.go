package cost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// TestTableIPinsPaperNumbers is the headline reproduction check: the
// generated table must carry exactly the figures printed in the paper.
func TestTableIPinsPaperNumbers(t *testing.T) {
	rows := TableI(56)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	tb, pi := rows[0], rows[1]
	if tb.Platform != "Testbed" || pi.Platform != "PiCloud" {
		t.Fatalf("platforms = %s/%s", tb.Platform, pi.Platform)
	}
	// Testbed: $112,000 (@$2,000), 10,080W (@180W), cooling yes.
	if tb.TotalCostUSD != 112000 || tb.UnitCostUSD != 2000 {
		t.Errorf("testbed cost = $%v (@$%v), paper says $112,000 (@$2,000)", tb.TotalCostUSD, tb.UnitCostUSD)
	}
	if tb.TotalPeakW != 10080 || tb.UnitPeakW != 180 {
		t.Errorf("testbed power = %v (@%v), paper says 10,080W (@180W)", tb.TotalPeakW, tb.UnitPeakW)
	}
	if !tb.NeedsCooling {
		t.Error("testbed must need cooling")
	}
	// PiCloud: $1,960 (@$35), 196W (@3.5W), no cooling.
	if pi.TotalCostUSD != 1960 || pi.UnitCostUSD != 35 {
		t.Errorf("picloud cost = $%v (@$%v), paper says $1,960 (@$35)", pi.TotalCostUSD, pi.UnitCostUSD)
	}
	if math.Abs(pi.TotalPeakW-196) > 1e-9 || pi.UnitPeakW != 3.5 {
		t.Errorf("picloud power = %v (@%v), paper says 196W (@3.5W)", pi.TotalPeakW, pi.UnitPeakW)
	}
	if pi.NeedsCooling {
		t.Error("picloud must not need cooling")
	}
}

func TestFormatTableI(t *testing.T) {
	out := FormatTableI(TableI(56))
	for _, want := range []string{"$112,000", "(@$2000)", "10,080W/h", "$1,960", "196W/h", "Yes", "No"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatThousands(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {999, "999"}, {1000, "1,000"}, {10080, "10,080"},
		{112000, "112,000"}, {1234567, "1,234,567"},
	}
	for _, c := range cases {
		if got := formatThousands(c.in); got != c.want {
			t.Errorf("formatThousands(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRatios(t *testing.T) {
	// $112,000 / $1,960 ≈ 57×; 10,080 / 196 ≈ 51×.
	if got := CostRatio(56); math.Abs(got-112000.0/1960) > 1e-9 {
		t.Errorf("cost ratio = %v", got)
	}
	if got := PowerRatio(56); math.Abs(got-10080.0/196) > 1e-9 {
		t.Errorf("power ratio = %v", got)
	}
	// Ratios are scale-invariant.
	if CostRatio(56) != CostRatio(1000) {
		t.Error("cost ratio should not depend on scale")
	}
}

func TestAnnualEnergyCost(t *testing.T) {
	// PiCloud at idle: 56 × 2.1W = 117.6W, no cooling.
	pi := AnnualEnergyCost(PiCloud(), 56, 0, 0.15)
	wantPi := 117.6 / 1000 * 24 * 365 * 0.15
	if math.Abs(pi-wantPi) > 1e-6 {
		t.Errorf("pi cost = %v, want %v", pi, wantPi)
	}
	// x86 pays the 33% cooling share: facility watts > IT watts.
	tb := AnnualEnergyCost(Testbed(), 56, 0, 0.15)
	itOnly := 56 * 90.0 / 1000 * 24 * 365 * 0.15
	if tb <= itOnly {
		t.Errorf("x86 cost %v should exceed IT-only %v (cooling overhead)", tb, itOnly)
	}
	// The cooling overhead is exactly 33% of the facility total.
	if math.Abs((tb-itOnly)/tb-0.33) > 1e-9 {
		t.Errorf("cooling share = %v, want 0.33", (tb-itOnly)/tb)
	}
}

func TestAnalyseBoM(t *testing.T) {
	s := AnalyseBoM()
	if s.TotalUSD <= 0 || s.TotalUSD >= s.RetailUSD {
		t.Errorf("BoM total $%v vs retail $%v", s.TotalUSD, s.RetailUSD)
	}
	if s.MarginUSD != s.RetailUSD-s.TotalUSD {
		t.Error("margin arithmetic wrong")
	}
	if s.SoCCostUSD != 10 {
		t.Errorf("SoC cost = $%v, paper estimates $10", s.SoCCostUSD)
	}
}

func TestScaleCurve(t *testing.T) {
	pts := ScaleCurve([]int{56, 560, 10000})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		if p.TestbedCostUSD <= p.PiCloudCostUSD {
			t.Errorf("point %d: testbed not more expensive", i)
		}
		if i > 0 && p.TestbedCostUSD <= pts[i-1].TestbedCostUSD {
			t.Errorf("curve not increasing at %d", i)
		}
	}
	// At 10k servers the PiCloud stays under one x86 rack's worth of cost.
	if pts[2].PiCloudCostUSD >= pts[0].TestbedCostUSD*4 {
		t.Error("10k-Pi cost unexpectedly high")
	}
}

// Property: for any scale, the PiCloud is cheaper and cooler than the
// testbed, and totals are linear in unit values.
func TestPropertyDominance(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw%10000) + 1
		tb, pi := RowFor(Testbed(), n), RowFor(PiCloud(), n)
		if pi.TotalCostUSD >= tb.TotalCostUSD || pi.TotalPeakW >= tb.TotalPeakW {
			return false
		}
		return tb.TotalCostUSD == tb.UnitCostUSD*float64(n) &&
			math.Abs(pi.TotalPeakW-pi.UnitPeakW*float64(n)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = FormatTableI(TableI(56))
	}
}
