// Package p2p implements the paper's Section III "radical departure":
// "a peer-to-peer Cloud management system" — cluster management with no
// pimaster. Every node runs an agent that (a) maintains a membership
// view via anti-entropy gossip with heartbeat versioning and timeout
// failure detection, and (b) answers decentralised placement queries
// from the freshest resource view it has gossiped, so any node can admit
// a VM without a head node.
//
// Gossip messages travel over the simulated fabric: each round costs the
// path latency to the chosen peer plus a serialisation delay, so
// propagation speed and partition behaviour reflect the real topology.
package p2p

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/sdn"
	"repro/internal/sim"
)

// Default protocol constants, SWIM-style.
const (
	DefaultGossipInterval = 1 * time.Second
	DefaultFanout         = 2
	DefaultSuspectAfter   = 5 * time.Second
	DefaultDeadAfter      = 10 * time.Second
	// gossipBytes is the wire size of one digest message.
	gossipBytes = 1200
)

// Errors.
var (
	ErrNoCandidates = errors.New("p2p: no live node can host the request")
	ErrStopped      = errors.New("p2p: agent stopped")
)

// Status is a member's liveness as seen by one agent.
type Status int

// Liveness states.
const (
	StatusAlive Status = iota + 1
	StatusSuspect
	StatusDead
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusAlive:
		return "alive"
	case StatusSuspect:
		return "suspect"
	case StatusDead:
		return "dead"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Load is the resource view a node gossips about itself.
type Load struct {
	CPUUtil    float64
	MemUsed    int64
	MemTotal   int64
	Containers int
}

// entry is one row of an agent's membership table.
type entry struct {
	host      netsim.NodeID
	heartbeat uint64
	load      Load
	// lastBump is the local time this agent last saw the heartbeat grow.
	lastBump sim.Time
}

// Config tunes the protocol.
type Config struct {
	GossipInterval time.Duration
	Fanout         int
	SuspectAfter   time.Duration
	DeadAfter      time.Duration
}

func (c *Config) fillDefaults() {
	if c.GossipInterval <= 0 {
		c.GossipInterval = DefaultGossipInterval
	}
	if c.Fanout <= 0 {
		c.Fanout = DefaultFanout
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = DefaultSuspectAfter
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = DefaultDeadAfter
	}
}

// Agent is the per-node management peer.
type Agent struct {
	Host netsim.NodeID

	mesh    *Mesh
	cfg     Config
	table   map[netsim.NodeID]*entry
	hb      uint64
	load    Load
	ticker  *sim.Ticker
	stopped bool

	// counters
	digestsSent     uint64
	digestsReceived uint64
}

// Mesh wires agents over the fabric. One Mesh per cloud.
type Mesh struct {
	engine *sim.Engine
	net    *netsim.Network
	ctrl   *sdn.Controller
	cfg    Config
	agents map[netsim.NodeID]*Agent
	order  []netsim.NodeID
}

// NewMesh creates an empty gossip mesh.
func NewMesh(engine *sim.Engine, net *netsim.Network, ctrl *sdn.Controller, cfg Config) *Mesh {
	cfg.fillDefaults()
	return &Mesh{
		engine: engine,
		net:    net,
		ctrl:   ctrl,
		cfg:    cfg,
		agents: make(map[netsim.NodeID]*Agent),
	}
}

// Join starts an agent on a host. Agents learn the rest of the
// membership through gossip seeded by the join contact (the first agent
// joined, mirroring a bootstrap node).
func (m *Mesh) Join(host netsim.NodeID) (*Agent, error) {
	if _, dup := m.agents[host]; dup {
		return nil, fmt.Errorf("p2p: %s already joined", host)
	}
	a := &Agent{
		Host:  host,
		mesh:  m,
		cfg:   m.cfg,
		table: make(map[netsim.NodeID]*entry),
	}
	a.table[host] = &entry{host: host, lastBump: m.engine.Now()}
	// Seed with the bootstrap contact so gossip can reach the mesh.
	if len(m.order) > 0 {
		seed := m.order[0]
		a.table[seed] = &entry{host: seed, lastBump: m.engine.Now()}
	}
	m.agents[host] = a
	m.order = append(m.order, host)
	a.ticker = m.engine.NewTicker(m.cfg.GossipInterval, func(sim.Time) { a.round() })
	return a, nil
}

// Agent returns the agent on a host, or nil.
func (m *Mesh) Agent(host netsim.NodeID) *Agent { return m.agents[host] }

// Stop halts an agent (simulating a crashed management daemon; the node
// stops refreshing its heartbeat and peers will declare it dead).
func (m *Mesh) Stop(host netsim.NodeID) {
	if a := m.agents[host]; a != nil {
		a.stopped = true
		a.ticker.Stop()
	}
}

// SetLoad updates the local resource view an agent advertises.
func (a *Agent) SetLoad(l Load) { a.load = l }

// DigestsSent returns gossip messages sent by this agent.
func (a *Agent) DigestsSent() uint64 { return a.digestsSent }

// DigestsReceived returns gossip messages received by this agent.
func (a *Agent) DigestsReceived() uint64 { return a.digestsReceived }

// round runs one gossip period: bump own heartbeat, pick fanout random
// live-ish peers, ship digests with network delay.
func (a *Agent) round() {
	if a.stopped {
		return
	}
	now := a.mesh.engine.Now()
	a.hb++
	self := a.table[a.Host]
	self.heartbeat = a.hb
	self.load = a.load
	self.lastBump = now

	peers := a.peerCandidates()
	rng := a.mesh.engine.Rand()
	for i := 0; i < a.cfg.Fanout && len(peers) > 0; i++ {
		idx := rng.Intn(len(peers))
		peer := peers[idx]
		peers = append(peers[:idx], peers[idx+1:]...)
		a.sendDigest(peer, false)
	}
	// Occasionally probe a member believed dead: a healed partition (or
	// a recovered daemon) is rediscovered through its reply.
	dead := a.deadCandidates()
	if len(dead) > 0 && rng.Float64() < 0.3 {
		a.sendDigest(dead[rng.Intn(len(dead))], false)
	}
}

// deadCandidates lists members currently classified dead.
func (a *Agent) deadCandidates() []netsim.NodeID {
	now := a.mesh.engine.Now()
	var out []netsim.NodeID
	for host, e := range a.table {
		if host != a.Host && a.statusOf(e, now) == StatusDead {
			out = append(out, host)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// peerCandidates lists known hosts except self and the dead.
func (a *Agent) peerCandidates() []netsim.NodeID {
	now := a.mesh.engine.Now()
	out := make([]netsim.NodeID, 0, len(a.table))
	for host, e := range a.table {
		if host == a.Host {
			continue
		}
		if a.statusOf(e, now) == StatusDead {
			continue
		}
		out = append(out, host)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// digestRow is one gossiped membership row.
type digestRow struct {
	host      netsim.NodeID
	heartbeat uint64
	load      Load
}

// sendDigest ships this agent's table to peer with realistic delay: the
// fabric's path latency plus serialisation of gossipBytes at line rate.
// Unless isReply, the receiver answers with its own digest (push–pull
// anti-entropy), which roughly doubles dissemination speed and lets a
// probed "dead" member announce itself back.
func (a *Agent) sendDigest(peer netsim.NodeID, isReply bool) {
	path, err := a.mesh.ctrl.PathFor(a.Host, peer, sdn.PolicyECMP, uint64(len(a.table)))
	if err != nil {
		return // unreachable right now; try again next round
	}
	var latency time.Duration
	var bottleneck float64
	for i := 1; i < len(path); i++ {
		l := a.mesh.net.Link(path[i-1], path[i])
		if l == nil || !l.Up() {
			return
		}
		latency += l.Latency
		if bottleneck == 0 || l.Capacity < bottleneck {
			bottleneck = l.Capacity
		}
	}
	if bottleneck > 0 {
		latency += time.Duration(float64(gossipBytes*8) / bottleneck * float64(time.Second))
	}
	rows := make([]digestRow, 0, len(a.table))
	for _, e := range a.table {
		rows = append(rows, digestRow{host: e.host, heartbeat: e.heartbeat, load: e.load})
	}
	a.digestsSent++
	target := peer
	from := a.Host
	a.mesh.engine.Schedule(latency, func() {
		if dst := a.mesh.agents[target]; dst != nil && !dst.stopped {
			dst.receive(rows, from, isReply)
		}
	})
}

// receive merges a digest: higher heartbeat wins, refreshing liveness.
// Push–pull: answer a fresh digest with our own, once.
func (a *Agent) receive(rows []digestRow, from netsim.NodeID, isReply bool) {
	now := a.mesh.engine.Now()
	a.digestsReceived++
	for _, row := range rows {
		have, ok := a.table[row.host]
		if !ok {
			a.table[row.host] = &entry{
				host:      row.host,
				heartbeat: row.heartbeat,
				load:      row.load,
				lastBump:  now,
			}
			continue
		}
		if row.heartbeat > have.heartbeat {
			have.heartbeat = row.heartbeat
			have.load = row.load
			have.lastBump = now
		}
	}
	if !isReply {
		a.sendDigest(from, true)
	}
}

// statusOf classifies an entry by heartbeat staleness.
func (a *Agent) statusOf(e *entry, now sim.Time) Status {
	if e.host == a.Host {
		return StatusAlive
	}
	age := now.Sub(e.lastBump)
	switch {
	case age >= a.cfg.DeadAfter:
		return StatusDead
	case age >= a.cfg.SuspectAfter:
		return StatusSuspect
	default:
		return StatusAlive
	}
}

// Members returns the agent's current view: host → status.
func (a *Agent) Members() map[netsim.NodeID]Status {
	now := a.mesh.engine.Now()
	out := make(map[netsim.NodeID]Status, len(a.table))
	for host, e := range a.table {
		out[host] = a.statusOf(e, now)
	}
	return out
}

// AliveCount returns how many members (including self) the agent
// believes alive.
func (a *Agent) AliveCount() int {
	n := 0
	for _, st := range a.Members() {
		if st == StatusAlive {
			n++
		}
	}
	return n
}

// LoadOf returns the freshest gossiped load for a host.
func (a *Agent) LoadOf(host netsim.NodeID) (Load, bool) {
	e, ok := a.table[host]
	if !ok {
		return Load{}, false
	}
	return e.load, true
}

// PlaceRequest is a decentralised placement ask.
type PlaceRequest struct {
	MemBytes      int64
	MaxContainers int
}

// Place answers a placement query from this agent's gossiped view alone —
// no head node involved. It returns the least-loaded alive host that
// fits, preferring lower memory fraction then fewer containers.
func (a *Agent) Place(req PlaceRequest) (netsim.NodeID, error) {
	if a.stopped {
		return "", ErrStopped
	}
	now := a.mesh.engine.Now()
	best := netsim.NodeID("")
	bestScore := 2.0
	for host, e := range a.table {
		if a.statusOf(e, now) != StatusAlive {
			continue
		}
		l := e.load
		if host == a.Host {
			l = a.load
		}
		if l.MemTotal == 0 {
			continue // no load report gossiped yet
		}
		if l.MemUsed+req.MemBytes > l.MemTotal {
			continue
		}
		if req.MaxContainers > 0 && l.Containers >= req.MaxContainers {
			continue
		}
		score := float64(l.MemUsed+req.MemBytes) / float64(l.MemTotal)
		if score < bestScore || (score == bestScore && host < best) {
			best, bestScore = host, score
		}
	}
	if best == "" {
		return "", ErrNoCandidates
	}
	return best, nil
}

// ConvergedViews reports how many agents currently see exactly n alive
// members — the convergence metric for the experiments.
func (m *Mesh) ConvergedViews(n int) int {
	count := 0
	for _, a := range m.agents {
		if a.stopped {
			continue
		}
		if a.AliveCount() == n {
			count++
		}
	}
	return count
}

// LiveAgents returns the number of non-stopped agents.
func (m *Mesh) LiveAgents() int {
	n := 0
	for _, a := range m.agents {
		if !a.stopped {
			n++
		}
	}
	return n
}
