package p2p

import (
	"errors"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/sdn"
	"repro/internal/sim"
	"repro/internal/topology"
)

// rig is a PiCloud fabric with a gossip mesh over every host.
type rig struct {
	engine *sim.Engine
	net    *netsim.Network
	topo   *topology.Topology
	mesh   *Mesh
}

func newRig(t testing.TB, racks, hostsPerRack int, cfg Config) *rig {
	t.Helper()
	e := sim.NewEngine(99)
	n := netsim.New(e)
	topo, err := topology.BuildMultiRoot(n, topology.MultiRootConfig{Racks: racks, HostsPerRack: hostsPerRack})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := sdn.NewController(e, n, sdn.DefaultConfig())
	for _, id := range topo.Switches() {
		ctrl.RegisterSwitch(openflow.NewSwitch(id, e))
	}
	return &rig{engine: e, net: n, topo: topo, mesh: NewMesh(e, n, ctrl, cfg)}
}

func (r *rig) joinAll(t testing.TB) {
	t.Helper()
	for _, h := range r.topo.Hosts {
		if _, err := r.mesh.Join(h); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMembershipConverges(t *testing.T) {
	r := newRig(t, 4, 14, Config{})
	r.joinAll(t)
	if err := r.engine.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	total := len(r.topo.Hosts)
	converged := r.mesh.ConvergedViews(total)
	if converged != total {
		t.Fatalf("after 30s only %d/%d agents see the full membership", converged, total)
	}
}

func TestConvergenceSpeedLogarithmic(t *testing.T) {
	// Epidemic dissemination should reach all 56 nodes in well under a
	// minute at 1 round/s with fanout 2.
	r := newRig(t, 4, 14, Config{})
	r.joinAll(t)
	deadline := 20 * time.Second
	if err := r.engine.RunFor(deadline); err != nil {
		t.Fatal(err)
	}
	if got := r.mesh.ConvergedViews(len(r.topo.Hosts)); got < len(r.topo.Hosts)*9/10 {
		t.Fatalf("after %v only %d/%d converged", deadline, got, len(r.topo.Hosts))
	}
}

func TestFailureDetection(t *testing.T) {
	r := newRig(t, 2, 4, Config{})
	r.joinAll(t)
	if err := r.engine.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := r.topo.Hosts[3]
	r.mesh.Stop(victim)
	// Heartbeats stop; within DeadAfter (10s) plus slack every live
	// agent marks it dead.
	if err := r.engine.RunFor(25 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, h := range r.topo.Hosts {
		if h == victim {
			continue
		}
		a := r.mesh.Agent(h)
		if st := a.Members()[victim]; st != StatusDead {
			t.Fatalf("agent %s sees %s as %s, want dead", h, victim, st)
		}
		if a.AliveCount() != len(r.topo.Hosts)-1 {
			t.Fatalf("agent %s alive count = %d", h, a.AliveCount())
		}
	}
}

func TestSuspectBeforeDead(t *testing.T) {
	r := newRig(t, 1, 4, Config{SuspectAfter: 5 * time.Second, DeadAfter: 60 * time.Second})
	r.joinAll(t)
	if err := r.engine.RunFor(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := r.topo.Hosts[2]
	r.mesh.Stop(victim)
	if err := r.engine.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	a := r.mesh.Agent(r.topo.Hosts[0])
	if st := a.Members()[victim]; st != StatusSuspect {
		t.Fatalf("status = %s, want suspect (before DeadAfter)", st)
	}
}

func TestDecentralisedPlacement(t *testing.T) {
	r := newRig(t, 2, 3, Config{})
	r.joinAll(t)
	// Publish loads: host 0 nearly full, the rest roomy.
	for i, h := range r.topo.Hosts {
		a := r.mesh.Agent(h)
		used := int64(60 * hw.MiB)
		if i == 0 {
			used = 240 * hw.MiB
		}
		a.SetLoad(Load{MemUsed: used, MemTotal: 256 * hw.MiB, Containers: i % 2})
	}
	if err := r.engine.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Any agent can answer placement; the full host never wins.
	for _, h := range r.topo.Hosts {
		got, err := r.mesh.Agent(h).Place(PlaceRequest{MemBytes: 30 * hw.MiB, MaxContainers: 3})
		if err != nil {
			t.Fatalf("agent %s: %v", h, err)
		}
		if got == r.topo.Hosts[0] {
			t.Fatalf("agent %s placed on the full host", h)
		}
	}
}

func TestPlacementRespectsLimits(t *testing.T) {
	r := newRig(t, 1, 2, Config{})
	r.joinAll(t)
	for _, h := range r.topo.Hosts {
		r.mesh.Agent(h).SetLoad(Load{MemUsed: 250 * hw.MiB, MemTotal: 256 * hw.MiB})
	}
	if err := r.engine.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	a := r.mesh.Agent(r.topo.Hosts[0])
	if _, err := a.Place(PlaceRequest{MemBytes: 30 * hw.MiB}); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("placement on full mesh = %v", err)
	}
	// Container cap.
	for _, h := range r.topo.Hosts {
		r.mesh.Agent(h).SetLoad(Load{MemUsed: 60 * hw.MiB, MemTotal: 256 * hw.MiB, Containers: 3})
	}
	if err := r.engine.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Place(PlaceRequest{MemBytes: hw.MiB, MaxContainers: 3}); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("placement over container cap = %v", err)
	}
}

func TestPlacementAvoidsDeadNodes(t *testing.T) {
	r := newRig(t, 1, 3, Config{})
	r.joinAll(t)
	// The emptiest node will die.
	r.mesh.Agent(r.topo.Hosts[0]).SetLoad(Load{MemUsed: 200 * hw.MiB, MemTotal: 256 * hw.MiB})
	r.mesh.Agent(r.topo.Hosts[1]).SetLoad(Load{MemUsed: 48 * hw.MiB, MemTotal: 256 * hw.MiB})
	r.mesh.Agent(r.topo.Hosts[2]).SetLoad(Load{MemUsed: 100 * hw.MiB, MemTotal: 256 * hw.MiB})
	if err := r.engine.RunFor(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	r.mesh.Stop(r.topo.Hosts[1])
	if err := r.engine.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := r.mesh.Agent(r.topo.Hosts[0]).Place(PlaceRequest{MemBytes: 10 * hw.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if got == r.topo.Hosts[1] {
		t.Fatal("placed on a dead node")
	}
}

func TestStoppedAgentRefusesQueries(t *testing.T) {
	r := newRig(t, 1, 2, Config{})
	r.joinAll(t)
	r.mesh.Stop(r.topo.Hosts[0])
	if _, err := r.mesh.Agent(r.topo.Hosts[0]).Place(PlaceRequest{MemBytes: 1}); !errors.Is(err, ErrStopped) {
		t.Fatalf("stopped agent = %v", err)
	}
	if r.mesh.LiveAgents() != 1 {
		t.Fatalf("live agents = %d", r.mesh.LiveAgents())
	}
}

func TestDoubleJoinRejected(t *testing.T) {
	r := newRig(t, 1, 2, Config{})
	if _, err := r.mesh.Join(r.topo.Hosts[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.mesh.Join(r.topo.Hosts[0]); err == nil {
		t.Fatal("double join accepted")
	}
}

func TestGossipTrafficBounded(t *testing.T) {
	r := newRig(t, 2, 4, Config{})
	r.joinAll(t)
	if err := r.engine.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Fanout 2 push–pull at 1 round/s for 60s: 2 pushes plus ~2 replies
	// per round, bounded by ~4/round + probe slack.
	for _, h := range r.topo.Hosts {
		a := r.mesh.Agent(h)
		if a.DigestsSent() > 280 {
			t.Fatalf("agent %s sent %d digests; protocol too chatty", h, a.DigestsSent())
		}
		if a.DigestsReceived() == 0 {
			t.Fatalf("agent %s received nothing", h)
		}
	}
}

func TestPartitionHealsAfterLinkRepair(t *testing.T) {
	r := newRig(t, 2, 3, Config{})
	r.joinAll(t)
	if err := r.engine.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Partition rack 1 by cutting its ToR uplinks.
	for _, agg := range r.topo.Agg {
		if err := r.net.SetLinkUp(r.topo.Edge[1], agg, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.engine.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Rack-0 agents mark rack-1 dead.
	a0 := r.mesh.Agent(r.topo.Racks[0][0])
	for _, h := range r.topo.Racks[1] {
		if st := a0.Members()[h]; st != StatusDead {
			t.Fatalf("partitioned host %s seen as %s", h, st)
		}
	}
	// Heal, and the membership recovers.
	for _, agg := range r.topo.Agg {
		if err := r.net.SetLinkUp(r.topo.Edge[1], agg, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.engine.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := a0.AliveCount(); got != len(r.topo.Hosts) {
		t.Fatalf("after heal alive = %d, want %d", got, len(r.topo.Hosts))
	}
}

func TestStatusString(t *testing.T) {
	if StatusAlive.String() != "alive" || StatusSuspect.String() != "suspect" || StatusDead.String() != "dead" {
		t.Error("status strings wrong")
	}
}

func BenchmarkGossipRound56Agents(b *testing.B) {
	r := newRig(b, 4, 14, Config{})
	r.joinAll(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.engine.RunFor(time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
