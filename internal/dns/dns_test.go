package dns

import (
	"errors"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func newPiZone(t testing.TB) *Server {
	s := NewServer()
	if err := s.AddZone(DefaultZone); err != nil {
		t.Fatal(err)
	}
	if err := s.AddZone("in-addr.arpa."); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Web1.PiCloud.dcs.gla.ac.uk", "web1.picloud.dcs.gla.ac.uk."},
		{"already.done.", "already.done."},
		{" spaced ", "spaced."},
		{"", ""},
	}
	for _, c := range cases {
		if got := Canonical(c.in); got != c.want {
			t.Errorf("Canonical(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNamingPolicy(t *testing.T) {
	if got := NodeFQDN(2, 13); got != "pi-r02-n13.picloud.dcs.gla.ac.uk." {
		t.Fatalf("NodeFQDN = %s", got)
	}
	if got := ContainerFQDN("Web1", 0, 3); got != "web1.pi-r00-n03.picloud.dcs.gla.ac.uk." {
		t.Fatalf("ContainerFQDN = %s", got)
	}
}

func TestReverseName(t *testing.T) {
	if got := ReverseName(netip.MustParseAddr("10.1.2.3")); got != "3.2.1.10.in-addr.arpa." {
		t.Fatalf("ReverseName = %s", got)
	}
}

func TestRegisterAndLookup(t *testing.T) {
	s := newPiZone(t)
	addr := netip.MustParseAddr("10.0.0.2")
	if err := s.RegisterHost(NodeFQDN(0, 0), addr); err != nil {
		t.Fatal(err)
	}
	got, err := s.LookupA(NodeFQDN(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != addr {
		t.Fatalf("LookupA = %v", got)
	}
	name, err := s.LookupPTR(addr)
	if err != nil {
		t.Fatal(err)
	}
	if name != NodeFQDN(0, 0) {
		t.Fatalf("LookupPTR = %s", name)
	}
}

func TestLookupErrors(t *testing.T) {
	s := newPiZone(t)
	if _, err := s.LookupA("ghost." + DefaultZone); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("missing name = %v", err)
	}
	if _, err := s.LookupA("example.com."); !errors.Is(err, ErrNoSuchZone) {
		t.Fatalf("foreign zone = %v", err)
	}
}

func TestAddValidation(t *testing.T) {
	s := newPiZone(t)
	cases := []struct {
		name string
		r    Record
		want error
	}{
		{"empty name", Record{Type: TypeA, Value: "10.0.0.1"}, ErrBadName},
		{"empty value", Record{Name: "x." + DefaultZone, Type: TypeA}, ErrBadRecord},
		{"bad A value", Record{Name: "x." + DefaultZone, Type: TypeA, Value: "not-an-ip"}, ErrBadRecord},
		{"v6 A value", Record{Name: "x." + DefaultZone, Type: TypeA, Value: "::1"}, ErrBadRecord},
		{"foreign zone", Record{Name: "x.example.com.", Type: TypeA, Value: "10.0.0.1"}, ErrNoSuchZone},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := s.Add(c.r); !errors.Is(err, c.want) {
				t.Fatalf("Add = %v, want %v", err, c.want)
			}
		})
	}
}

func TestAddIdempotent(t *testing.T) {
	s := newPiZone(t)
	r := Record{Name: "x." + DefaultZone, Type: TypeA, Value: "10.0.0.5"}
	if err := s.Add(r); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(r); err != nil {
		t.Fatal(err)
	}
	if s.RecordCount() != 1 {
		t.Fatalf("RecordCount = %d after duplicate add", s.RecordCount())
	}
}

func TestMultipleARecords(t *testing.T) {
	s := newPiZone(t)
	name := "web.vip." + DefaultZone
	for _, ip := range []string{"10.0.0.2", "10.0.1.2"} {
		if err := s.Add(Record{Name: name, Type: TypeA, Value: ip}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.LookupA(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("LookupA = %v, want 2 addresses", got)
	}
}

func TestCNAMEChain(t *testing.T) {
	s := newPiZone(t)
	if err := s.RegisterHost(NodeFQDN(0, 0), netip.MustParseAddr("10.0.0.2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Record{Name: "db." + DefaultZone, Type: TypeCNAME, Value: NodeFQDN(0, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Record{Name: "primary-db." + DefaultZone, Type: TypeCNAME, Value: "db." + DefaultZone}); err != nil {
		t.Fatal(err)
	}
	got, err := s.LookupA("primary-db." + DefaultZone)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != netip.MustParseAddr("10.0.0.2") {
		t.Fatalf("chained lookup = %v", got)
	}
}

func TestCNAMELoopDetected(t *testing.T) {
	s := newPiZone(t)
	if err := s.Add(Record{Name: "a." + DefaultZone, Type: TypeCNAME, Value: "b." + DefaultZone}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Record{Name: "b." + DefaultZone, Type: TypeCNAME, Value: "a." + DefaultZone}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LookupA("a." + DefaultZone); !errors.Is(err, ErrCNAMELoop) {
		t.Fatalf("loop = %v", err)
	}
}

func TestCNAMEExclusivity(t *testing.T) {
	s := newPiZone(t)
	name := "x." + DefaultZone
	if err := s.Add(Record{Name: name, Type: TypeA, Value: "10.0.0.9"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Record{Name: name, Type: TypeCNAME, Value: "y." + DefaultZone}); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("CNAME over A = %v", err)
	}
	cname := "c." + DefaultZone
	if err := s.Add(Record{Name: cname, Type: TypeCNAME, Value: "y." + DefaultZone}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Record{Name: cname, Type: TypeA, Value: "10.0.0.9"}); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("A over CNAME = %v", err)
	}
}

func TestRemoveName(t *testing.T) {
	s := newPiZone(t)
	if err := s.RegisterHost(NodeFQDN(0, 1), netip.MustParseAddr("10.0.0.3")); err != nil {
		t.Fatal(err)
	}
	if got := s.RemoveName(NodeFQDN(0, 1)); got != 1 {
		t.Fatalf("RemoveName = %d", got)
	}
	if _, err := s.LookupA(NodeFQDN(0, 1)); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("after remove = %v", err)
	}
	if got := s.RemoveName("ghost." + DefaultZone); got != 0 {
		t.Fatalf("RemoveName ghost = %d", got)
	}
}

func TestZoneManagement(t *testing.T) {
	s := NewServer()
	if err := s.AddZone(DefaultZone); err != nil {
		t.Fatal(err)
	}
	if err := s.AddZone(DefaultZone); !errors.Is(err, ErrZoneExists) {
		t.Fatalf("duplicate zone = %v", err)
	}
	if err := s.AddZone(""); !errors.Is(err, ErrBadName) {
		t.Fatalf("empty zone = %v", err)
	}
	// Most-specific zone wins.
	if err := s.AddZone("sub." + DefaultZone); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Record{Name: "x.sub." + DefaultZone, Type: TypeA, Value: "10.0.0.1"}); err != nil {
		t.Fatal(err)
	}
	zs := s.Zones()
	if len(zs) != 2 {
		t.Fatalf("Zones = %v", zs)
	}
}

func TestDumpSorted(t *testing.T) {
	s := newPiZone(t)
	for i := 0; i < 4; i++ {
		addr := netip.MustParseAddr("10.0.0.2").Next()
		_ = addr
		if err := s.RegisterHost(NodeFQDN(0, 3-i), netip.AddrFrom4([4]byte{10, 0, 0, byte(10 + i)})); err != nil {
			t.Fatal(err)
		}
	}
	dump := s.Dump()
	if len(dump) != 8 {
		t.Fatalf("Dump len = %d", len(dump))
	}
	for i := 1; i < len(dump); i++ {
		if dump[i-1].Name > dump[i].Name {
			t.Fatal("Dump not sorted")
		}
	}
}

// Property: RegisterHost always round-trips name→addr→name for distinct
// hosts.
func TestPropertyRegisterRoundTrip(t *testing.T) {
	f := func(rack, idx uint8, b3, b4 uint8) bool {
		s := newPiZone(t)
		fqdn := NodeFQDN(int(rack%4), int(idx%14))
		addr := netip.AddrFrom4([4]byte{10, 50, b3, b4})
		if err := s.RegisterHost(fqdn, addr); err != nil {
			return false
		}
		got, err := s.LookupA(fqdn)
		if err != nil || len(got) != 1 || got[0] != addr {
			return false
		}
		name, err := s.LookupPTR(addr)
		return err == nil && name == fqdn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRTypeString(t *testing.T) {
	if TypeA.String() != "A" || TypePTR.String() != "PTR" || TypeCNAME.String() != "CNAME" {
		t.Error("record type strings wrong")
	}
	if !strings.HasPrefix(RType(9).String(), "TYPE") {
		t.Error("unknown type format")
	}
}

func BenchmarkLookupA(b *testing.B) {
	s := newPiZone(b)
	for r := 0; r < 4; r++ {
		for i := 0; i < 14; i++ {
			if err := s.RegisterHost(NodeFQDN(r, i), netip.AddrFrom4([4]byte{10, byte(r), 0, byte(2 + i)})); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.LookupA(NodeFQDN(i%4, i%14)); err != nil {
			b.Fatal(err)
		}
	}
}
