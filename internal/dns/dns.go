// Package dns implements pimaster's naming service: authoritative zones
// with A, PTR and CNAME records, TTLs, and the PiCloud naming policy
// (nodes as pi-rXX-nYY.picloud..., containers as <name>.<node>...). The
// paper places "customised IP and naming policies through DHCP and DNS
// services running on the pimaster".
package dns

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"
)

// DefaultZone is the PiCloud's authoritative zone.
const DefaultZone = "picloud.dcs.gla.ac.uk."

// DefaultTTL is applied when a record carries none.
const DefaultTTL = 5 * time.Minute

// RType is a DNS record type.
type RType int

// Supported record types.
const (
	TypeA RType = iota + 1
	TypePTR
	TypeCNAME
)

// String names the type.
func (t RType) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypePTR:
		return "PTR"
	case TypeCNAME:
		return "CNAME"
	default:
		return fmt.Sprintf("TYPE%d", int(t))
	}
}

// Record is one resource record.
type Record struct {
	Name  string // fully qualified, lower case, trailing dot
	Type  RType
	Value string // address text for A, target FQDN for PTR/CNAME
	TTL   time.Duration
}

// Errors.
var (
	ErrNXDomain   = errors.New("dns: no such name")
	ErrNoSuchZone = errors.New("dns: not authoritative for zone")
	ErrZoneExists = errors.New("dns: zone already exists")
	ErrBadName    = errors.New("dns: invalid name")
	ErrBadRecord  = errors.New("dns: invalid record")
	ErrCNAMELoop  = errors.New("dns: CNAME loop")
)

// Canonical normalises a name: lower case with a trailing dot.
func Canonical(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return ""
	}
	if !strings.HasSuffix(name, ".") {
		name += "."
	}
	return name
}

// NodeFQDN returns the canonical node name, e.g. pi-r00-n03.picloud....
func NodeFQDN(rack, idx int) string {
	return fmt.Sprintf("pi-r%02d-n%02d.%s", rack, idx, DefaultZone)
}

// ContainerFQDN names a container under its node, the PiCloud policy:
// <container>.<node-short-name>.<zone>.
func ContainerFQDN(container string, rack, idx int) string {
	return fmt.Sprintf("%s.pi-r%02d-n%02d.%s", strings.ToLower(container), rack, idx, DefaultZone)
}

// ReverseName converts an IPv4 address to its in-addr.arpa name.
func ReverseName(addr netip.Addr) string {
	b := addr.As4()
	return fmt.Sprintf("%d.%d.%d.%d.in-addr.arpa.", b[3], b[2], b[1], b[0])
}

// zone holds the records under one apex.
type zone struct {
	apex    string
	records map[string][]Record
}

// Server is the authoritative DNS service.
type Server struct {
	zones map[string]*zone
}

// NewServer returns a server with no zones.
func NewServer() *Server { return &Server{zones: make(map[string]*zone)} }

// AddZone creates an authoritative zone (e.g. the PiCloud zone and the
// reverse in-addr.arpa zone).
func (s *Server) AddZone(apex string) error {
	apex = Canonical(apex)
	if apex == "" {
		return fmt.Errorf("%w: empty apex", ErrBadName)
	}
	if _, dup := s.zones[apex]; dup {
		return fmt.Errorf("%w: %s", ErrZoneExists, apex)
	}
	s.zones[apex] = &zone{apex: apex, records: make(map[string][]Record)}
	return nil
}

// Zones lists zone apexes, sorted.
func (s *Server) Zones() []string {
	out := make([]string, 0, len(s.zones))
	for apex := range s.zones {
		out = append(out, apex)
	}
	sort.Strings(out)
	return out
}

// zoneFor finds the most specific zone containing name.
func (s *Server) zoneFor(name string) (*zone, error) {
	best := ""
	for apex := range s.zones {
		if strings.HasSuffix(name, apex) && len(apex) > len(best) {
			best = apex
		}
	}
	if best == "" {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchZone, name)
	}
	return s.zones[best], nil
}

// Add inserts a record into its zone.
func (s *Server) Add(r Record) error {
	r.Name = Canonical(r.Name)
	if r.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadName)
	}
	if r.Value == "" {
		return fmt.Errorf("%w: empty value for %s", ErrBadRecord, r.Name)
	}
	if r.Type == TypeA {
		addr, err := netip.ParseAddr(r.Value)
		if err != nil || !addr.Is4() {
			return fmt.Errorf("%w: %q is not an IPv4 address", ErrBadRecord, r.Value)
		}
	}
	if r.Type == TypePTR || r.Type == TypeCNAME {
		r.Value = Canonical(r.Value)
	}
	if r.TTL <= 0 {
		r.TTL = DefaultTTL
	}
	z, err := s.zoneFor(r.Name)
	if err != nil {
		return err
	}
	// CNAME exclusivity: a name with a CNAME has no other records.
	existing := z.records[r.Name]
	if r.Type == TypeCNAME && len(existing) > 0 {
		return fmt.Errorf("%w: %s already has records", ErrBadRecord, r.Name)
	}
	for _, have := range existing {
		if have.Type == TypeCNAME {
			return fmt.Errorf("%w: %s is a CNAME", ErrBadRecord, r.Name)
		}
		if have.Type == r.Type && have.Value == r.Value {
			return nil // idempotent
		}
	}
	z.records[r.Name] = append(existing, r)
	return nil
}

// RegisterHost adds the A record and matching PTR for a host, the usual
// pimaster registration path.
func (s *Server) RegisterHost(fqdn string, addr netip.Addr) error {
	if err := s.Add(Record{Name: fqdn, Type: TypeA, Value: addr.String()}); err != nil {
		return err
	}
	return s.Add(Record{Name: ReverseName(addr), Type: TypePTR, Value: fqdn})
}

// RemoveName deletes all records under a name (and returns how many).
func (s *Server) RemoveName(name string) int {
	name = Canonical(name)
	z, err := s.zoneFor(name)
	if err != nil {
		return 0
	}
	n := len(z.records[name])
	delete(z.records, name)
	return n
}

// Resolve answers a query, following CNAME chains for A lookups (up to 8
// links, like real resolvers).
func (s *Server) Resolve(name string, t RType) ([]Record, error) {
	name = Canonical(name)
	for depth := 0; depth < 8; depth++ {
		z, err := s.zoneFor(name)
		if err != nil {
			return nil, err
		}
		rs := z.records[name]
		if len(rs) == 0 {
			return nil, fmt.Errorf("%w: %s", ErrNXDomain, name)
		}
		var match []Record
		var cname *Record
		for i := range rs {
			switch {
			case rs[i].Type == t:
				match = append(match, rs[i])
			case rs[i].Type == TypeCNAME:
				cname = &rs[i]
			}
		}
		if len(match) > 0 {
			out := make([]Record, len(match))
			copy(out, match)
			return out, nil
		}
		if cname != nil && t != TypeCNAME {
			name = cname.Value
			continue
		}
		return nil, fmt.Errorf("%w: %s has no %s records", ErrNXDomain, name, t)
	}
	return nil, fmt.Errorf("%w: %s", ErrCNAMELoop, name)
}

// LookupA resolves a name to its IPv4 addresses.
func (s *Server) LookupA(name string) ([]netip.Addr, error) {
	rs, err := s.Resolve(name, TypeA)
	if err != nil {
		return nil, err
	}
	out := make([]netip.Addr, 0, len(rs))
	for _, r := range rs {
		addr, err := netip.ParseAddr(r.Value)
		if err != nil {
			return nil, fmt.Errorf("%w: stored A record %q", ErrBadRecord, r.Value)
		}
		out = append(out, addr)
	}
	return out, nil
}

// LookupPTR resolves an address back to its name.
func (s *Server) LookupPTR(addr netip.Addr) (string, error) {
	rs, err := s.Resolve(ReverseName(addr), TypePTR)
	if err != nil {
		return "", err
	}
	return rs[0].Value, nil
}

// RecordCount returns the total number of records served.
func (s *Server) RecordCount() int {
	total := 0
	for _, z := range s.zones {
		for _, rs := range z.records {
			total += len(rs)
		}
	}
	return total
}

// Dump lists every record, sorted by name then type, for the control
// panel.
func (s *Server) Dump() []Record {
	var out []Record
	for _, z := range s.zones {
		for _, rs := range z.records {
			out = append(out, rs...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Type < out[j].Type
	})
	return out
}
