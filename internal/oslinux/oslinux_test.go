package oslinux

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
)

func newPi(t testing.TB) (*sim.Engine, *Kernel) {
	t.Helper()
	e := sim.NewEngine(1)
	k, err := NewKernel(e, hw.PiModelB(), "pi-test")
	if err != nil {
		t.Fatal(err)
	}
	return e, k
}

func TestKernelBoot(t *testing.T) {
	_, k := newPi(t)
	if k.MemTotal() != 256*hw.MiB {
		t.Fatalf("MemTotal = %d", k.MemTotal())
	}
	if k.MemUsed() != DefaultOSReservedBytes {
		t.Fatalf("fresh kernel uses %d, want OS reservation %d", k.MemUsed(), DefaultOSReservedBytes)
	}
	if k.CPUUtil() != 0 {
		t.Fatalf("idle util = %v", k.CPUUtil())
	}
}

func TestKernelRejectsTinyBoard(t *testing.T) {
	e := sim.NewEngine(1)
	b := hw.PiModelB()
	b.MemBytes = 16 * hw.MiB
	if _, err := NewKernel(e, b, "tiny"); err == nil {
		t.Fatal("kernel booted on board smaller than OS reservation")
	}
	b.MemBytes = 0
	if _, err := NewKernel(e, b, "zero"); err == nil {
		t.Fatal("kernel booted on invalid board")
	}
}

func TestSingleTaskGetsFullCPU(t *testing.T) {
	e, k := newPi(t)
	if _, err := k.CreateCGroup("c1", Limits{}); err != nil {
		t.Fatal(err)
	}
	done := false
	// 875 MI on an 875-MIPS board = exactly 1 second.
	if _, err := k.StartTask("c1", TaskSpec{WorkMI: 875, OnDone: func() { done = true }}); err != nil {
		t.Fatal(err)
	}
	if got := k.CPUUtil(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("util = %v, want 1.0", got)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("task did not complete")
	}
	if got := e.Now().Seconds(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("completion at %vs, want 1s", got)
	}
}

func TestSharesProportionalAllocation(t *testing.T) {
	_, k := newPi(t)
	if _, err := k.CreateCGroup("heavy", Limits{CPUShares: 2048}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateCGroup("light", Limits{CPUShares: 1024}); err != nil {
		t.Fatal(err)
	}
	th, err := k.StartTask("heavy", TaskSpec{})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := k.StartTask("light", TaskSpec{})
	if err != nil {
		t.Fatal(err)
	}
	// 2:1 split of 875 MIPS.
	if got := float64(th.Rate()); math.Abs(got-875*2.0/3.0) > 1e-6 {
		t.Fatalf("heavy rate = %v", got)
	}
	if got := float64(tl.Rate()); math.Abs(got-875/3.0) > 1e-6 {
		t.Fatalf("light rate = %v", got)
	}
}

func TestSharesSplitWithinCgroup(t *testing.T) {
	_, k := newPi(t)
	if _, err := k.CreateCGroup("a", Limits{}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateCGroup("b", Limits{}); err != nil {
		t.Fatal(err)
	}
	// Two tasks in a, one in b: group-level fairness means a's tasks get
	// a quarter each and b's task half.
	a1, _ := k.StartTask("a", TaskSpec{})
	a2, _ := k.StartTask("a", TaskSpec{})
	b1, _ := k.StartTask("b", TaskSpec{})
	if math.Abs(float64(a1.Rate())-875.0/4) > 1e-6 || math.Abs(float64(a2.Rate())-875.0/4) > 1e-6 {
		t.Fatalf("a rates = %v, %v; want 218.75", a1.Rate(), a2.Rate())
	}
	if math.Abs(float64(b1.Rate())-875.0/2) > 1e-6 {
		t.Fatalf("b rate = %v, want 437.5", b1.Rate())
	}
}

func TestQuotaCapsGroup(t *testing.T) {
	_, k := newPi(t)
	if _, err := k.CreateCGroup("capped", Limits{CPUQuotaMIPS: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateCGroup("free", Limits{}); err != nil {
		t.Fatal(err)
	}
	tc, _ := k.StartTask("capped", TaskSpec{})
	tf, _ := k.StartTask("free", TaskSpec{})
	if got := float64(tc.Rate()); math.Abs(got-100) > 1e-6 {
		t.Fatalf("capped rate = %v, want 100", got)
	}
	// Max-min hands the slack to the other group.
	if got := float64(tf.Rate()); math.Abs(got-775) > 1e-6 {
		t.Fatalf("free rate = %v, want 775", got)
	}
}

func TestRateCapTask(t *testing.T) {
	_, k := newPi(t)
	if _, err := k.CreateCGroup("c", Limits{}); err != nil {
		t.Fatal(err)
	}
	daemon, _ := k.StartTask("c", TaskSpec{RateCapMIPS: 10})
	if got := float64(daemon.Rate()); math.Abs(got-10) > 1e-6 {
		t.Fatalf("daemon rate = %v, want 10", got)
	}
	if got := k.CPUUtil(); math.Abs(got-10.0/875) > 1e-9 {
		t.Fatalf("util = %v", got)
	}
}

func TestFiniteTasksShareThenComplete(t *testing.T) {
	e, k := newPi(t)
	if _, err := k.CreateCGroup("c", Limits{}); err != nil {
		t.Fatal(err)
	}
	var order []string
	if _, err := k.StartTask("c", TaskSpec{WorkMI: 875, OnDone: func() { order = append(order, "short") }}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.StartTask("c", TaskSpec{WorkMI: 2625, OnDone: func() { order = append(order, "long") }}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Equal shares: short (875 MI) finishes at 2s; long then runs alone:
	// 2625-875=1750 left at 875 MIPS → 2 more seconds. Total 4s.
	if len(order) != 2 || order[0] != "short" || order[1] != "long" {
		t.Fatalf("order = %v", order)
	}
	if got := e.Now().Seconds(); math.Abs(got-4.0) > 1e-9 {
		t.Fatalf("makespan = %v, want 4s", got)
	}
}

func TestCancelTask(t *testing.T) {
	e, k := newPi(t)
	if _, err := k.CreateCGroup("c", Limits{}); err != nil {
		t.Fatal(err)
	}
	fired := false
	task, err := k.StartTask("c", TaskSpec{WorkMI: 875, OnDone: func() { fired = true }})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.CancelTask(task); err != nil {
		t.Fatal(err)
	}
	if err := k.CancelTask(task); !errors.Is(err, ErrTaskEnded) {
		t.Fatalf("double cancel = %v", err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled task fired OnDone")
	}
	if !task.Ended() {
		t.Fatal("task not marked ended")
	}
}

func TestMemoryAccounting(t *testing.T) {
	_, k := newPi(t)
	if _, err := k.CreateCGroup("c", Limits{MemLimitBytes: 64 * hw.MiB}); err != nil {
		t.Fatal(err)
	}
	if err := k.Alloc("c", 30*hw.MiB); err != nil {
		t.Fatal(err)
	}
	if got := k.CGroup("c").MemUsed(); got != 30*hw.MiB {
		t.Fatalf("cgroup mem = %d", got)
	}
	// Group limit enforced.
	if err := k.Alloc("c", 40*hw.MiB); !errors.Is(err, ErrCgroupMemLimit) {
		t.Fatalf("over-limit alloc = %v", err)
	}
	if err := k.Free("c", 30*hw.MiB); err != nil {
		t.Fatal(err)
	}
	if err := k.Free("c", 1); err == nil {
		t.Fatal("over-free accepted")
	}
	if err := k.Alloc("c", -5); err == nil {
		t.Fatal("negative alloc accepted")
	}
	if err := k.Alloc("nope", 1); !errors.Is(err, ErrNoSuchCgroup) {
		t.Fatalf("alloc to unknown cgroup = %v", err)
	}
}

func TestNodeOOM(t *testing.T) {
	_, k := newPi(t)
	if _, err := k.CreateCGroup("big", Limits{}); err != nil {
		t.Fatal(err)
	}
	avail := k.MemAvailable()
	if err := k.Alloc("big", avail); err != nil {
		t.Fatal(err)
	}
	if err := k.Alloc("big", 1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("alloc past RAM = %v", err)
	}
	if k.OOMRejects() != 1 {
		t.Fatalf("OOMRejects = %d", k.OOMRejects())
	}
	if v := k.OOMVictim(); v == nil || v.Name != "big" {
		t.Fatalf("OOMVictim = %v", v)
	}
}

func TestOOMVictimPicksLargest(t *testing.T) {
	_, k := newPi(t)
	for _, n := range []string{"a", "b"} {
		if _, err := k.CreateCGroup(n, Limits{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Alloc("a", 10*hw.MiB); err != nil {
		t.Fatal(err)
	}
	if err := k.Alloc("b", 20*hw.MiB); err != nil {
		t.Fatal(err)
	}
	if v := k.OOMVictim(); v.Name != "b" {
		t.Fatalf("victim = %s, want b", v.Name)
	}
}

func TestCgroupLifecycle(t *testing.T) {
	_, k := newPi(t)
	if _, err := k.CreateCGroup("c", Limits{}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateCGroup("c", Limits{}); !errors.Is(err, ErrCgroupExists) {
		t.Fatalf("duplicate create = %v", err)
	}
	if _, err := k.CreateCGroup("bad", Limits{CPUShares: -1}); err == nil {
		t.Fatal("negative shares accepted")
	}
	if err := k.Alloc("c", hw.MiB); err != nil {
		t.Fatal(err)
	}
	if err := k.RemoveCGroup("c"); !errors.Is(err, ErrCgroupBusy) {
		t.Fatalf("remove busy = %v", err)
	}
	if err := k.Free("c", hw.MiB); err != nil {
		t.Fatal(err)
	}
	if err := k.RemoveCGroup("c"); err != nil {
		t.Fatal(err)
	}
	if err := k.RemoveCGroup("c"); !errors.Is(err, ErrNoSuchCgroup) {
		t.Fatalf("double remove = %v", err)
	}
}

func TestSetLimitsRescheduling(t *testing.T) {
	_, k := newPi(t)
	if _, err := k.CreateCGroup("c", Limits{}); err != nil {
		t.Fatal(err)
	}
	task, _ := k.StartTask("c", TaskSpec{})
	if math.Abs(float64(task.Rate())-875) > 1e-6 {
		t.Fatalf("rate = %v", task.Rate())
	}
	if err := k.SetLimits("c", Limits{CPUQuotaMIPS: 200}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(task.Rate())-200) > 1e-6 {
		t.Fatalf("rate after quota = %v, want 200", task.Rate())
	}
	if err := k.SetLimits("nope", Limits{}); !errors.Is(err, ErrNoSuchCgroup) {
		t.Fatalf("SetLimits unknown = %v", err)
	}
	// Lowering a mem limit below usage is refused.
	if err := k.Alloc("c", 10*hw.MiB); err != nil {
		t.Fatal(err)
	}
	if err := k.SetLimits("c", Limits{MemLimitBytes: hw.MiB}); !errors.Is(err, ErrCgroupMemLimit) {
		t.Fatalf("shrink below usage = %v", err)
	}
}

func TestUtilObserverAndEnergyHookup(t *testing.T) {
	e, k := newPi(t)
	var last float64
	k.OnUtilChange(func(_ sim.Time, u float64) { last = u })
	if _, err := k.CreateCGroup("c", Limits{}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.StartTask("c", TaskSpec{WorkMI: 875}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(last-1.0) > 1e-9 {
		t.Fatalf("observer saw %v, want 1.0", last)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if last != 0 {
		t.Fatalf("observer saw %v after completion, want 0", last)
	}
}

func TestDirtyRate(t *testing.T) {
	_, k := newPi(t)
	if _, err := k.CreateCGroup("c", Limits{}); err != nil {
		t.Fatal(err)
	}
	if err := k.SetDirtyRate("c", 5*float64(hw.MiB)); err != nil {
		t.Fatal(err)
	}
	if got := k.CGroup("c").DirtyRateBytesPerS(); got != 5*float64(hw.MiB) {
		t.Fatalf("dirty rate = %v", got)
	}
	if err := k.SetDirtyRate("c", -1); err != nil {
		t.Fatal(err)
	}
	if got := k.CGroup("c").DirtyRateBytesPerS(); got != 0 {
		t.Fatalf("negative dirty rate stored: %v", got)
	}
	if err := k.SetDirtyRate("nope", 1); !errors.Is(err, ErrNoSuchCgroup) {
		t.Fatalf("unknown cgroup = %v", err)
	}
}

func TestStorageQueueFIFO(t *testing.T) {
	e, k := newPi(t)
	var order []string
	var times []float64
	// 20MiB read at 20MiB/s = 1s; 10MiB write at 10MiB/s = 1s more.
	k.StorageRead(20*hw.MiB, func() {
		order = append(order, "read")
		times = append(times, e.Now().Seconds())
	})
	k.StorageWrite(10*hw.MiB, func() {
		order = append(order, "write")
		times = append(times, e.Now().Seconds())
	})
	if k.StorageQueueDepth() != 2 {
		t.Fatalf("queue depth = %d", k.StorageQueueDepth())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "read" || order[1] != "write" {
		t.Fatalf("order = %v", order)
	}
	if math.Abs(times[0]-1.0) > 1e-6 || math.Abs(times[1]-2.0) > 1e-6 {
		t.Fatalf("times = %v, want [1,2]", times)
	}
	if k.StorageQueueDepth() != 0 {
		t.Fatalf("queue depth after drain = %d", k.StorageQueueDepth())
	}
}

// Property: however many tasks and groups, allocated CPU never exceeds
// board capacity and no task rate is negative.
func TestPropertySchedulerSafety(t *testing.T) {
	f := func(layout []uint8) bool {
		_, k := newPi(t)
		for i, tasks := range layout {
			if i >= 6 {
				break
			}
			name := string(rune('a' + i))
			shares := 512 * (int(tasks%4) + 1)
			if _, err := k.CreateCGroup(name, Limits{CPUShares: shares}); err != nil {
				return false
			}
			for j := 0; j < int(tasks%5); j++ {
				if _, err := k.StartTask(name, TaskSpec{}); err != nil {
					return false
				}
			}
		}
		total := 0.0
		for _, cg := range k.cgroups {
			for task := range cg.tasks {
				if task.rate < -1e-9 {
					return false
				}
				total += task.rate
			}
		}
		return total <= float64(k.spec.CPU)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: finite work is conserved — a task's completion time equals
// work/capacity when run alone, regardless of work size.
func TestPropertyWorkConservation(t *testing.T) {
	f := func(work uint16) bool {
		if work == 0 {
			return true
		}
		e := sim.NewEngine(2)
		k, err := NewKernel(e, hw.PiModelB(), "p")
		if err != nil {
			return false
		}
		if _, err := k.CreateCGroup("c", Limits{}); err != nil {
			return false
		}
		if _, err := k.StartTask("c", TaskSpec{WorkMI: hw.MI(work)}); err != nil {
			return false
		}
		if err := e.Run(); err != nil {
			return false
		}
		want := float64(work) / 875.0
		return math.Abs(e.Now().Seconds()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReschedule30Tasks(b *testing.B) {
	_, k := newPi(b)
	for i := 0; i < 10; i++ {
		name := string(rune('a' + i))
		if _, err := k.CreateCGroup(name, Limits{}); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			if _, err := k.StartTask(name, TaskSpec{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.reschedule()
	}
}

func TestFreezerStopsProgress(t *testing.T) {
	e, k := newPi(t)
	if _, err := k.CreateCGroup("c", Limits{}); err != nil {
		t.Fatal(err)
	}
	done := false
	// 875 MI = 1s of work unfrozen.
	task, err := k.StartTask("c", TaskSpec{WorkMI: 875, OnDone: func() { done = true }})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := k.SetFrozen("c", true); err != nil {
		t.Fatal(err)
	}
	if !k.CGroup("c").Frozen() {
		t.Fatal("cgroup not marked frozen")
	}
	if task.Rate() != 0 {
		t.Fatalf("frozen task rate = %v", task.Rate())
	}
	// Idempotent freeze.
	if err := k.SetFrozen("c", true); err != nil {
		t.Fatal(err)
	}
	if err := e.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("frozen task completed")
	}
	if err := k.SetFrozen("c", false); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("thawed task never completed")
	}
	// 0.5s ran + 10s frozen + 0.5s remaining = 11s.
	if got := e.Now().Seconds(); math.Abs(got-11.0) > 1e-6 {
		t.Fatalf("completion at %vs, want 11s", got)
	}
	if err := k.SetFrozen("nope", true); !errors.Is(err, ErrNoSuchCgroup) {
		t.Fatalf("freeze unknown = %v", err)
	}
}
