// Package oslinux models the Raspbian/Linux kernel running on every
// PiCloud node: a proportional-share (CFS-like) CPU scheduler driven by
// cgroup shares and quotas, cgroup memory accounting with node-level OOM,
// a serialised SD-card IO queue, and the dirty-page bookkeeping live
// migration needs. This is the CGROUPS substrate the paper's Linux
// Containers sit on.
package oslinux

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
)

// Errors.
var (
	ErrCgroupExists   = errors.New("oslinux: cgroup already exists")
	ErrNoSuchCgroup   = errors.New("oslinux: no such cgroup")
	ErrCgroupBusy     = errors.New("oslinux: cgroup has tasks or memory")
	ErrCgroupMemLimit = errors.New("oslinux: cgroup memory limit exceeded")
	ErrOutOfMemory    = errors.New("oslinux: node out of memory")
	ErrTaskEnded      = errors.New("oslinux: task already ended")
)

// DefaultShares is the kernel's default cpu.shares value.
const DefaultShares = 1024

// DefaultOSReservedBytes approximates a headless Raspbian's own footprint.
const DefaultOSReservedBytes = 48 * hw.MiB

// Limits configures a cgroup.
type Limits struct {
	// CPUShares is the proportional weight (default 1024).
	CPUShares int
	// CPUQuotaMIPS caps the group's aggregate CPU rate; 0 = unlimited.
	CPUQuotaMIPS hw.MIPS
	// MemLimitBytes caps the group's memory; 0 = unlimited (node-bound).
	MemLimitBytes int64
}

// CGroup is one control group: the isolation unit a container maps onto.
type CGroup struct {
	Name    string
	limits  Limits
	memUsed int64
	tasks   map[*Task]struct{}
	// dirtyRate is the rate at which the group's memory pages are being
	// re-written; pre-copy migration converges only if it can copy
	// faster than this.
	dirtyRate float64 // bytes/s
	// frozen mirrors the cgroup freezer: tasks keep their state but make
	// no progress.
	frozen bool
}

// Frozen reports whether the group is in the freezer.
func (c *CGroup) Frozen() bool { return c.frozen }

// MemUsed returns the group's current memory usage in bytes.
func (c *CGroup) MemUsed() int64 { return c.memUsed }

// Limits returns the group's current limits.
func (c *CGroup) Limits() Limits { return c.limits }

// TaskCount returns the number of live tasks in the group.
func (c *CGroup) TaskCount() int { return len(c.tasks) }

// DirtyRateBytesPerS returns the page-dirtying rate workloads declared.
func (c *CGroup) DirtyRateBytesPerS() float64 { return c.dirtyRate }

// TaskSpec describes CPU work to run inside a cgroup.
type TaskSpec struct {
	// WorkMI is the total work; zero or negative means an endless
	// service task that runs until cancelled.
	WorkMI hw.MI
	// RateCapMIPS optionally caps the task below its fair share
	// (a mostly-idle daemon). Zero means no cap.
	RateCapMIPS hw.MIPS
	// OnDone fires when a finite task finishes.
	OnDone func()
	// Label tags the task for debugging.
	Label string
}

// Task is a running unit of CPU demand.
type Task struct {
	PID     int
	Spec    TaskSpec
	cgroup  *CGroup
	rate    float64 // MIPS currently granted
	remain  float64 // MI outstanding (finite tasks)
	started sim.Time
	last    sim.Time
	doneEv  sim.Event
	ended   bool
}

// Rate returns the task's current CPU allocation in MIPS.
func (t *Task) Rate() hw.MIPS { return hw.MIPS(t.rate) }

// Ended reports whether the task has finished or was cancelled.
func (t *Task) Ended() bool { return t.ended }

// Kernel is the per-node OS. Single-threaded on the simulation engine.
type Kernel struct {
	Name   string
	engine *sim.Engine
	spec   hw.BoardSpec

	cgroups map[string]*CGroup
	nextPID int
	memUsed int64 // includes OS reservation
	// reserved is the kernel+base-system footprint.
	reserved int64

	io ioQueue

	// onUtil, if set, observes every CPU utilisation change (the energy
	// meter subscribes).
	onUtil func(at sim.Time, util float64)

	oomRejects uint64
}

// NewKernel boots an OS model on the given board.
func NewKernel(engine *sim.Engine, spec hw.BoardSpec, name string) (*Kernel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	k := &Kernel{
		Name:     name,
		engine:   engine,
		spec:     spec,
		cgroups:  make(map[string]*CGroup),
		reserved: DefaultOSReservedBytes,
	}
	if k.reserved > spec.MemBytes {
		return nil, fmt.Errorf("oslinux: board %q has less RAM than the OS needs", spec.Model)
	}
	k.memUsed = k.reserved
	k.io.engine = engine
	k.io.readBps = float64(spec.Storage.ReadBytesPerS)
	k.io.writeBps = float64(spec.Storage.WriteBytesPerS)
	return k, nil
}

// Spec returns the board the kernel runs on.
func (k *Kernel) Spec() hw.BoardSpec { return k.spec }

// OnUtilChange registers the utilisation observer (at most one).
func (k *Kernel) OnUtilChange(fn func(at sim.Time, util float64)) { k.onUtil = fn }

// OOMRejects counts allocations refused for lack of node memory.
func (k *Kernel) OOMRejects() uint64 { return k.oomRejects }

// CreateCGroup makes a new control group. Zero-valued shares default to
// DefaultShares.
func (k *Kernel) CreateCGroup(name string, l Limits) (*CGroup, error) {
	if _, dup := k.cgroups[name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrCgroupExists, name)
	}
	if l.CPUShares == 0 {
		l.CPUShares = DefaultShares
	}
	if l.CPUShares < 0 || l.CPUQuotaMIPS < 0 || l.MemLimitBytes < 0 {
		return nil, fmt.Errorf("oslinux: negative limits for cgroup %s", name)
	}
	cg := &CGroup{Name: name, limits: l, tasks: make(map[*Task]struct{})}
	k.cgroups[name] = cg
	return cg, nil
}

// CGroup returns the named group, or nil.
func (k *Kernel) CGroup(name string) *CGroup { return k.cgroups[name] }

// RemoveCGroup deletes an empty group.
func (k *Kernel) RemoveCGroup(name string) error {
	cg, ok := k.cgroups[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchCgroup, name)
	}
	if len(cg.tasks) > 0 || cg.memUsed > 0 {
		return fmt.Errorf("%w: %s", ErrCgroupBusy, name)
	}
	delete(k.cgroups, name)
	return nil
}

// SetLimits replaces a group's limits and reschedules the CPU.
func (k *Kernel) SetLimits(name string, l Limits) error {
	cg, ok := k.cgroups[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchCgroup, name)
	}
	if l.CPUShares == 0 {
		l.CPUShares = DefaultShares
	}
	if l.CPUShares < 0 || l.CPUQuotaMIPS < 0 || l.MemLimitBytes < 0 {
		return fmt.Errorf("oslinux: negative limits for cgroup %s", name)
	}
	if l.MemLimitBytes > 0 && cg.memUsed > l.MemLimitBytes {
		return fmt.Errorf("%w: %s uses %d bytes, new limit %d", ErrCgroupMemLimit, name, cg.memUsed, l.MemLimitBytes)
	}
	cg.limits = l
	k.reschedule()
	return nil
}

// SetFrozen moves a cgroup in or out of the freezer. Frozen tasks retain
// their remaining work but receive no CPU, exactly like the kernel
// freezer used by lxc-freeze and by stop-and-copy migration.
func (k *Kernel) SetFrozen(name string, frozen bool) error {
	cg, ok := k.cgroups[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchCgroup, name)
	}
	if cg.frozen == frozen {
		return nil
	}
	k.advance()
	cg.frozen = frozen
	k.reschedule()
	return nil
}

// SetDirtyRate declares the rate at which a group's pages are dirtied.
func (k *Kernel) SetDirtyRate(name string, bytesPerS float64) error {
	cg, ok := k.cgroups[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchCgroup, name)
	}
	if bytesPerS < 0 {
		bytesPerS = 0
	}
	cg.dirtyRate = bytesPerS
	return nil
}

// Alloc charges bytes of memory to a cgroup, enforcing the group limit
// and the board's physical RAM.
func (k *Kernel) Alloc(name string, bytes int64) error {
	cg, ok := k.cgroups[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchCgroup, name)
	}
	if bytes < 0 {
		return fmt.Errorf("oslinux: negative allocation")
	}
	if cg.limits.MemLimitBytes > 0 && cg.memUsed+bytes > cg.limits.MemLimitBytes {
		return fmt.Errorf("%w: %s", ErrCgroupMemLimit, name)
	}
	if k.memUsed+bytes > k.spec.MemBytes {
		k.oomRejects++
		return fmt.Errorf("%w: node %s (%d of %d bytes used)", ErrOutOfMemory, k.Name, k.memUsed, k.spec.MemBytes)
	}
	cg.memUsed += bytes
	k.memUsed += bytes
	return nil
}

// Free returns memory from a cgroup.
func (k *Kernel) Free(name string, bytes int64) error {
	cg, ok := k.cgroups[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchCgroup, name)
	}
	if bytes < 0 || bytes > cg.memUsed {
		return fmt.Errorf("oslinux: freeing %d bytes from cgroup %s holding %d", bytes, name, cg.memUsed)
	}
	cg.memUsed -= bytes
	k.memUsed -= bytes
	return nil
}

// MemTotal returns the board RAM.
func (k *Kernel) MemTotal() int64 { return k.spec.MemBytes }

// MemUsed returns used memory including the OS reservation.
func (k *Kernel) MemUsed() int64 { return k.memUsed }

// MemAvailable returns free memory.
func (k *Kernel) MemAvailable() int64 { return k.spec.MemBytes - k.memUsed }

// OOMVictim returns the cgroup using the most memory — the kernel's kill
// choice under pressure — or nil when none hold memory.
func (k *Kernel) OOMVictim() *CGroup {
	var victim *CGroup
	for _, cg := range k.cgroups {
		if victim == nil || cg.memUsed > victim.memUsed ||
			(cg.memUsed == victim.memUsed && cg.Name < victim.Name) {
			if cg.memUsed > 0 {
				victim = cg
			}
		}
	}
	return victim
}

// StartTask admits CPU work into a cgroup and reschedules.
func (k *Kernel) StartTask(cgName string, spec TaskSpec) (*Task, error) {
	cg, ok := k.cgroups[cgName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchCgroup, cgName)
	}
	k.advance()
	k.nextPID++
	t := &Task{
		PID:     k.nextPID,
		Spec:    spec,
		cgroup:  cg,
		remain:  float64(spec.WorkMI),
		started: k.engine.Now(),
		last:    k.engine.Now(),
	}
	cg.tasks[t] = struct{}{}
	k.reschedule()
	return t, nil
}

// CancelTask stops a task before completion. Its OnDone does not fire.
func (k *Kernel) CancelTask(t *Task) error {
	if t.ended {
		return ErrTaskEnded
	}
	k.advance()
	k.endTask(t)
	k.reschedule()
	return nil
}

// endTask finalises a task; callers follow with reschedule().
func (k *Kernel) endTask(t *Task) {
	if t.ended {
		return
	}
	t.ended = true
	t.rate = 0
	t.doneEv.Cancel()
	t.doneEv = sim.Event{}
	delete(t.cgroup.tasks, t)
}

// advance credits work done since the last scheduling decision.
func (k *Kernel) advance() {
	now := k.engine.Now()
	for _, cg := range k.cgroups {
		for t := range cg.tasks {
			dt := now.Sub(t.last).Seconds()
			if dt > 0 && t.rate > 0 && t.Spec.WorkMI > 0 {
				done := t.rate * dt
				if done > t.remain {
					done = t.remain
				}
				t.remain -= done
			}
			t.last = now
		}
	}
}

// reschedule recomputes the weighted max-min CPU allocation.
//
// Resources: the board CPU (capacity spec.CPU) shared by all tasks, and
// each cgroup quota shared by that group's tasks. Task weight =
// cgroup shares / live tasks in the group, mirroring CFS group
// scheduling. Progressive filling raises all rates proportionally to
// weight until a resource saturates or a task hits its cap.
func (k *Kernel) reschedule() {
	active := make(map[*Task]float64) // task → weight
	for _, cg := range k.cgroups {
		if len(cg.tasks) == 0 {
			continue
		}
		w := float64(cg.limits.CPUShares) / float64(len(cg.tasks))
		for t := range cg.tasks {
			t.rate = 0
			if !cg.frozen {
				active[t] = w
			}
		}
	}
	cpuRemaining := float64(k.spec.CPU)
	quotaRemaining := make(map[*CGroup]float64)
	for _, cg := range k.cgroups {
		if cg.limits.CPUQuotaMIPS > 0 {
			quotaRemaining[cg] = float64(cg.limits.CPUQuotaMIPS)
		}
	}
	for len(active) > 0 {
		// Find the smallest proportional increment that saturates
		// something.
		sumW := 0.0
		sumWByGroup := make(map[*CGroup]float64)
		for t, w := range active {
			sumW += w
			sumWByGroup[t.cgroup] += w
		}
		inc := math.Inf(1)
		if sumW > 0 {
			inc = cpuRemaining / sumW
		}
		for cg, rem := range quotaRemaining {
			if gw := sumWByGroup[cg]; gw > 0 {
				if v := rem / gw; v < inc {
					inc = v
				}
			}
		}
		for t, w := range active {
			if t.Spec.RateCapMIPS > 0 && w > 0 {
				if v := (float64(t.Spec.RateCapMIPS) - t.rate) / w; v < inc {
					inc = v
				}
			}
		}
		if math.IsInf(inc, 1) || inc < 0 {
			break
		}
		for t, w := range active {
			t.rate += inc * w
		}
		cpuRemaining -= inc * sumW
		for cg, gw := range sumWByGroup {
			if _, ok := quotaRemaining[cg]; ok {
				quotaRemaining[cg] -= inc * gw
			}
		}
		// Freeze.
		cpuDone := cpuRemaining <= 1e-9
		for t := range active {
			frozen := cpuDone
			if !frozen {
				if rem, ok := quotaRemaining[t.cgroup]; ok && rem <= 1e-9 {
					frozen = true
				}
			}
			if !frozen && t.Spec.RateCapMIPS > 0 && t.rate >= float64(t.Spec.RateCapMIPS)-1e-9 {
				frozen = true
			}
			if frozen {
				delete(active, t)
			}
		}
		if cpuDone {
			break
		}
	}
	k.rescheduleCompletions()
	k.notifyUtil()
}

// rescheduleCompletions re-arms finite tasks' completion events.
func (k *Kernel) rescheduleCompletions() {
	for _, cg := range k.cgroups {
		for t := range cg.tasks {
			t.doneEv.Cancel()
			t.doneEv = sim.Event{}
			if t.Spec.WorkMI <= 0 || t.rate <= 0 {
				continue
			}
			seconds := t.remain / t.rate
			t := t
			t.doneEv = k.engine.Schedule(time.Duration(seconds*float64(time.Second)), func() {
				k.advance()
				t.remain = 0
				done := t.Spec.OnDone
				k.endTask(t)
				k.reschedule()
				if done != nil {
					done()
				}
			})
		}
	}
}

// CPUUtil returns the fraction of board CPU currently allocated.
func (k *Kernel) CPUUtil() float64 {
	total := 0.0
	for _, cg := range k.cgroups {
		for t := range cg.tasks {
			total += t.rate
		}
	}
	u := total / float64(k.spec.CPU)
	if u > 1 {
		u = 1
	}
	return u
}

func (k *Kernel) notifyUtil() {
	if k.onUtil != nil {
		k.onUtil(k.engine.Now(), k.CPUUtil())
	}
}

// --- Storage IO ---

// ioQueue serialises SD-card transfers: one operation at a time, FIFO,
// at the card's sequential bandwidth.
type ioQueue struct {
	engine   *sim.Engine
	readBps  float64
	writeBps float64
	busyTill sim.Time
	queued   int
}

// enqueue schedules an operation after all earlier ones.
func (q *ioQueue) enqueue(bytes int64, bps float64, fn func()) {
	if bps <= 0 {
		if fn != nil {
			q.engine.Schedule(0, fn)
		}
		return
	}
	dur := time.Duration(float64(bytes) / bps * float64(time.Second))
	start := q.engine.Now()
	if q.busyTill > start {
		start = q.busyTill
	}
	end := start.Add(dur)
	q.busyTill = end
	q.queued++
	q.engine.ScheduleAt(end, func() {
		q.queued--
		if fn != nil {
			fn()
		}
	})
}

// StorageRead schedules a sequential read of n bytes; fn fires when the
// card delivers the last byte (FIFO behind earlier operations).
func (k *Kernel) StorageRead(n int64, fn func()) { k.io.enqueue(n, k.io.readBps, fn) }

// StorageWrite schedules a sequential write of n bytes.
func (k *Kernel) StorageWrite(n int64, fn func()) { k.io.enqueue(n, k.io.writeBps, fn) }

// StorageQueueDepth returns the number of in-flight or queued operations.
func (k *Kernel) StorageQueueDepth() int { return k.io.queued }
