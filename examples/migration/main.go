// Migration: live-migrate a loaded service between racks twice — once
// with classic address-bound routing (established connections die) and
// once with the paper's IP-less label routing (the SDN controller
// re-points flows and they survive). Prints downtime, copied bytes and
// per-flow fate for both.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/migration"
	"repro/internal/netsim"
	"repro/internal/pimaster"
	"repro/internal/sdn"
)

func main() {
	if err := run("ip"); err != nil {
		log.Fatal(err)
	}
	if err := run("label"); err != nil {
		log.Fatal(err)
	}
}

func run(routing string) error {
	cloud, err := core.New(core.Config{Seed: 3})
	if err != nil {
		return err
	}
	defer cloud.Close()

	rec, err := cloud.Master.SpawnVM(pimaster.SpawnVMRequest{Name: "svc", Image: "database"})
	if err != nil {
		return err
	}
	if err := cloud.Settle(); err != nil {
		return err
	}
	srcNode, err := cloud.NodeByName(rec.Node)
	if err != nil {
		return err
	}
	var dstNode *core.Node
	for _, n := range cloud.Nodes() {
		if n.Rack != srcNode.Rack {
			dstNode = n
			break
		}
	}

	// The service works: pages dirty at 2 MiB/s, and three clients hold
	// long-lived connections into it.
	cloud.Mu.Lock()
	cont, err := srcNode.Suite.Get("svc")
	if err != nil {
		cloud.Mu.Unlock()
		return err
	}
	if err := srcNode.Suite.Kernel().SetDirtyRate(cont.CgroupName(), 2*float64(hw.MiB)); err != nil {
		cloud.Mu.Unlock()
		return err
	}
	var flows []*netsim.Flow
	for i := 0; i < 3; i++ {
		client := cloud.Topo.Racks[(srcNode.Rack+2)%4][i]
		path, err := cloud.Ctrl.PathFor(client, srcNode.Host, sdn.PolicyECMP, uint64(i+1))
		if err != nil {
			cloud.Mu.Unlock()
			return err
		}
		f, err := cloud.Net.StartFlow(netsim.FlowSpec{
			Src: client, Dst: srcNode.Host, Path: path, RateCapBps: 4e6,
		})
		if err != nil {
			cloud.Mu.Unlock()
			return err
		}
		flows = append(flows, f)
	}
	cloud.Mu.Unlock()

	fmt.Printf("=== %s-routed migration: %s (%s) -> %s ===\n", routing, rec.Name, srcNode.Name, dstNode.Name)
	mode := migration.RoutingLabel
	if routing == "ip" {
		mode = migration.RoutingIP
	}
	var rep migration.Report
	cloud.Mu.Lock()
	err = cloud.Mig.Migrate(migration.Request{
		Container: "svc",
		SrcHost:   srcNode.Host, DstHost: dstNode.Host,
		SrcSuite: srcNode.Suite, DstSuite: dstNode.Suite,
		Routing: mode, Label: rec.Label,
		LiveFlows: flows,
		OnDone:    func(r migration.Report) { rep = r },
	})
	cloud.Mu.Unlock()
	if err != nil {
		return err
	}
	if err := cloud.RunFor(5 * time.Minute); err != nil {
		return err
	}
	if rep.Err != nil {
		return rep.Err
	}
	fmt.Printf("pre-copy rounds: %d, copied %.1f MiB, converged: %v\n",
		rep.Iterations, float64(rep.TotalBytes)/float64(hw.MiB), rep.Converged)
	fmt.Printf("total duration: %v, downtime: %v\n", rep.TotalDuration.Round(time.Millisecond), rep.Downtime.Round(time.Millisecond))
	fmt.Printf("flows rerouted: %d, flows broken: %d\n", rep.FlowsRerouted, rep.FlowsBroken)
	alive := 0
	for _, f := range flows {
		if ended, _ := f.Ended(); !ended {
			alive++
		}
	}
	fmt.Printf("client connections still alive after migration: %d of %d\n\n", alive, len(flows))
	return nil
}
