// Mapreduce: a Hadoop-style batch job over worker containers spread
// round-robin across all four racks — the paper's "hadoop etc."
// application class. Shows the shuffle phase contending on ToR uplinks
// and the scale-out curve from 7 to 56 workers.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/pimaster"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, workers := range []int{7, 14, 28, 56} {
		rep, cross, err := runJob(workers)
		if err != nil {
			return err
		}
		fmt.Printf("workers=%2d  makespan=%8v  map=%v shuffle=%v reduce=%v  shuffled=%.0fMiB cross-rack=%.0fMiB\n",
			workers, rep.Makespan.Round(1e6), rep.MapPhase.Round(1e6),
			rep.ShufflePhase.Round(1e6), rep.ReducePhase.Round(1e6),
			float64(rep.ShuffledBytes)/float64(hw.MiB), cross/float64(hw.MiB))
	}
	return nil
}

func runJob(workers int) (workload.MRReport, float64, error) {
	cloud, err := core.New(core.Config{Seed: 4})
	if err != nil {
		return workload.MRReport{}, 0, err
	}
	defer cloud.Close()

	var eps []workload.Endpoint
	for i := 0; i < workers; i++ {
		name := fmt.Sprintf("hd-%02d", i)
		if _, err := cloud.Master.SpawnVM(pimaster.SpawnVMRequest{
			Name: name, Image: "hadoop", Placer: "round-robin",
		}); err != nil {
			return workload.MRReport{}, 0, err
		}
		if err := cloud.Settle(); err != nil {
			return workload.MRReport{}, 0, err
		}
		ep, err := cloud.Endpoint(name)
		if err != nil {
			return workload.MRReport{}, 0, err
		}
		eps = append(eps, ep)
	}
	runner, err := workload.NewMRRunner(cloud.Fabric(), eps)
	if err != nil {
		return workload.MRReport{}, 0, err
	}
	var rep workload.MRReport
	cloud.Mu.Lock()
	err = runner.Run(workload.MRJob{
		Name: "wordcount", Maps: 56, Reduces: 28,
	}, func(r workload.MRReport) { rep = r })
	cloud.Mu.Unlock()
	if err != nil {
		return workload.MRReport{}, 0, err
	}
	if err := cloud.Settle(); err != nil {
		return workload.MRReport{}, 0, err
	}
	cloud.Mu.Lock()
	cross := workload.CrossRackBytes(cloud.Net, cloud.Topo.Edge)
	cloud.Mu.Unlock()
	return rep, cross, nil
}
