// P2pcloud: the paper's Section III "peer-to-peer Cloud management
// system" — no pimaster. Every Pi runs a gossip agent; membership
// converges epidemically, a node failure is detected by timeout, and any
// surviving node answers placement queries from its own gossiped view.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/p2p"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cloud, err := core.New(core.Config{Seed: 5})
	if err != nil {
		return err
	}
	defer cloud.Close()

	// Start a gossip agent on all 56 Pis.
	cloud.Mu.Lock()
	mesh := p2p.NewMesh(cloud.Engine, cloud.Net, cloud.Ctrl, p2p.Config{})
	for i, node := range cloud.Nodes() {
		agent, err := mesh.Join(node.Host)
		if err != nil {
			cloud.Mu.Unlock()
			return err
		}
		agent.SetLoad(p2p.Load{
			MemUsed:  node.Suite.Kernel().MemUsed(),
			MemTotal: node.Suite.Kernel().MemTotal(),
		})
		_ = i
	}
	cloud.Mu.Unlock()

	// Watch convergence.
	total := len(cloud.Nodes())
	for _, after := range []time.Duration{5 * time.Second, 10 * time.Second, 15 * time.Second} {
		if err := cloud.RunFor(5 * time.Second); err != nil {
			return err
		}
		cloud.Mu.Lock()
		conv := mesh.ConvergedViews(total)
		cloud.Mu.Unlock()
		fmt.Printf("t=%-4v %d/%d agents see the full membership\n", after, conv, total)
	}

	// Kill a management daemon; the mesh notices without any master.
	victim := cloud.Nodes()[20]
	fmt.Printf("\nstopping the agent on %s\n", victim.Name)
	cloud.Mu.Lock()
	mesh.Stop(victim.Host)
	cloud.Mu.Unlock()
	if err := cloud.RunFor(20 * time.Second); err != nil {
		return err
	}
	cloud.Mu.Lock()
	observer := mesh.Agent(cloud.Nodes()[0].Host)
	status := observer.Members()[victim.Host]
	alive := observer.AliveCount()
	cloud.Mu.Unlock()
	fmt.Printf("agent on %s now sees %s as %s (%d alive)\n",
		cloud.Nodes()[0].Name, victim.Name, status, alive)

	// Decentralised placement: ask three different nodes where a new
	// 30 MiB container should go; each answers from gossip alone.
	fmt.Println("\ndecentralised placement answers:")
	cloud.Mu.Lock()
	for _, idx := range []int{0, 27, 55} {
		asker := mesh.Agent(cloud.Nodes()[idx].Host)
		host, err := asker.Place(p2p.PlaceRequest{MemBytes: 30 * hw.MiB, MaxContainers: 3})
		if err != nil {
			cloud.Mu.Unlock()
			return err
		}
		fmt.Printf("  asked %-12s → place on %s\n", cloud.Nodes()[idx].Name, host)
	}
	cloud.Mu.Unlock()
	return nil
}
