// Consolidation: the paper's cautionary tale, live. A web farm spread
// over all four racks serves steady traffic; the power-aware planner
// then drains lightly-used Pis so they can be switched off. Power drops
// by an order of magnitude — and the p99 latency explodes, because the
// consolidated nodes' 100 Mb/s uplinks saturate. "A naive consolidation
// algorithm may improve server resource usage at the expense of frequent
// episodes of network congestion" (Section III).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/migration"
	"repro/internal/netsim"
	"repro/internal/pimaster"
	"repro/internal/placement"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cloud, err := core.New(core.Config{Seed: 11, Placer: placement.WorstFit{}})
	if err != nil {
		return err
	}
	defer cloud.Close()

	// Deploy 8 web replicas, spread for resilience by worst-fit.
	var servers []*workload.WebServer
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("web-%02d", i)
		rec, err := cloud.Master.SpawnVM(pimaster.SpawnVMRequest{Name: name, Image: "webserver"})
		if err != nil {
			return err
		}
		if err := cloud.Settle(); err != nil {
			return err
		}
		ep, err := cloud.Endpoint(name)
		if err != nil {
			return err
		}
		srv, err := workload.NewWebServer(cloud.Fabric(), ep, workload.WebServerConfig{ResponseBytes: hw.MiB})
		if err != nil {
			return err
		}
		servers = append(servers, srv)
		fmt.Printf("replica %s on %s (rack %d)\n", name, rec.Node, cloud.Topo.RackOf(ep.Host))
	}
	farm, err := workload.NewWebFarm(servers...)
	if err != nil {
		return err
	}
	var clients []workload.Endpoint
	for rack := 0; rack < 4; rack++ {
		clients = append(clients,
			workload.Endpoint{Host: cloud.Topo.Racks[rack][12]},
			workload.Endpoint{Host: cloud.Topo.Racks[rack][13]})
	}
	measure := func(tag string) error {
		gen, err := workload.NewLoadGen(cloud.Fabric(), farm, clients, workload.LoadGenConfig{
			RatePerSecond: 60, Duration: 20 * time.Second,
		})
		if err != nil {
			return err
		}
		cloud.Mu.Lock()
		gen.Start()
		cloud.Mu.Unlock()
		if err := cloud.RunFor(20 * time.Second); err != nil {
			return err
		}
		if err := cloud.Settle(); err != nil {
			return err
		}
		fmt.Printf("%s: draw %.1f W, p50 %.0f ms, p99 %.0f ms (%d ok / %d failed)\n",
			tag, cloud.PowerDraw(),
			gen.Latency.Quantile(0.5), gen.Latency.Quantile(0.99),
			gen.Completed, gen.Failed)
		return nil
	}
	if err := measure("before consolidation"); err != nil {
		return err
	}

	// Plan the naive consolidation and execute it with live migrations.
	cloud.Mu.Lock()
	view := &placement.View{Locate: map[string]netsim.NodeID{}, Rack: map[netsim.NodeID]int{}}
	var loads []placement.ContainerLoad
	for _, n := range cloud.Nodes() {
		k := n.Suite.Kernel()
		view.Nodes = append(view.Nodes, placement.NodeView{
			ID: n.Host, Rack: n.Rack,
			CPU: k.Spec().CPU, MemTotal: k.MemTotal(), MemUsed: k.MemUsed(),
			Containers: n.Suite.Count(), MaxContainers: 3, PoweredOn: true,
		})
		view.Rack[n.Host] = n.Rack
		for _, cn := range n.Suite.List() {
			view.Locate[cn] = n.Host
			mem, _ := n.Suite.MemUsedBytes(cn)
			loads = append(loads, placement.ContainerLoad{Name: cn, Node: n.Host, MemBytes: mem})
		}
	}
	plan := placement.PlanConsolidation(view, loads, placement.Policy{})
	cloud.Mu.Unlock()
	fmt.Printf("\nconsolidation plan: %d migrations\n", len(plan))
	for _, step := range plan {
		dst, err := cloud.NodeByHost(step.To)
		if err != nil {
			return err
		}
		if err := cloud.Master.MigrateVM(step.Container, pimaster.MigrateVMRequest{TargetNode: dst.Name},
			func(rep migration.Report) {
				fmt.Printf("  migrated %s %s→%s (downtime %v)\n",
					rep.Container, rep.From, rep.To, rep.Downtime.Round(time.Millisecond))
			}); err != nil {
			return err
		}
		if err := cloud.Settle(); err != nil {
			return err
		}
	}
	// Switch the drained Pis off.
	off := 0
	for _, n := range cloud.Nodes() {
		cloud.Mu.Lock()
		empty := n.Suite.RunningCount() == 0
		cloud.Mu.Unlock()
		if empty {
			if err := cloud.PowerOffNode(n.Name); err == nil {
				off++
			}
		}
	}
	fmt.Printf("powered off %d of %d Pis\n\n", off, len(cloud.Nodes()))

	// Re-bind the farm to the containers' new homes and re-measure.
	for _, srv := range servers {
		ep, err := cloud.Endpoint(srv.Endpoint.Container)
		if err != nil {
			return err
		}
		srv.Endpoint = ep
	}
	return measure("after consolidation ")
}
