// Quickstart: boot the published 56-Pi cloud, spawn the three Fig. 3
// application containers through pimaster, inspect the result and read
// the power meter — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/pimaster"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Boot the paper's cloud: 4 racks × 14 Raspberry Pi Model B.
	cloud, err := core.New(core.Config{Seed: 1})
	if err != nil {
		return err
	}
	defer cloud.Close()
	fmt.Print(cloud.Describe())

	// 2. Spawn one container of each application image (Fig. 3) through
	// pimaster: placement, DHCP lease, DNS name and SDN label included.
	for _, img := range []string{"webserver", "database", "hadoop"} {
		rec, err := cloud.Master.SpawnVM(pimaster.SpawnVMRequest{
			Name:  "demo-" + img,
			Image: img,
		})
		if err != nil {
			return err
		}
		fmt.Printf("spawned %-15s on %s  ip=%s  fqdn=%s\n", rec.Name, rec.Node, rec.IP, rec.FQDN)
	}

	// 3. Let the containers boot (SD-card reads take simulated time).
	if err := cloud.Settle(); err != nil {
		return err
	}

	// 4. Inspect one node over its real REST API.
	rec, err := cloud.Master.VM("demo-webserver")
	if err != nil {
		return err
	}
	node, err := cloud.NodeByName(rec.Node)
	if err != nil {
		return err
	}
	st, err := node.Client.Status()
	if err != nil {
		return err
	}
	fmt.Printf("node %s: %d containers, %d/%d MiB, %.2f W\n",
		st.Node, st.Containers, st.MemUsed/hw.MiB, st.MemTotal/hw.MiB, st.PowerWatts)

	// 5. The whole-cloud wall-socket reading (Section III).
	p := cloud.Master.Power()
	fmt.Printf("cloud draw: %.1f W — single trailing socket ok: %v (limit %.0f W)\n",
		p.TotalWatts, p.SocketOK, p.SocketLimitW)
	return nil
}
