// Webfarm: a replicated lightweight-httpd tier behind a round-robin VIP
// serving Poisson traffic from clients in another rack — the paper's
// "lightweight httpd servers" workload. Demonstrates cross-layer
// observation: request latency, per-node CPU, ToR-uplink utilisation and
// the power meter, all from one run.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/pimaster"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cloud, err := core.New(core.Config{Seed: 2})
	if err != nil {
		return err
	}
	defer cloud.Close()

	// Three web replicas, placed by pimaster's default best-fit.
	var servers []*workload.WebServer
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("web-%d", i)
		rec, err := cloud.Master.SpawnVM(pimaster.SpawnVMRequest{Name: name, Image: "webserver"})
		if err != nil {
			return err
		}
		fmt.Printf("replica %s on %s (%s)\n", name, rec.Node, rec.IP)
		if err := cloud.Settle(); err != nil {
			return err
		}
		ep, err := cloud.Endpoint(name)
		if err != nil {
			return err
		}
		srv, err := workload.NewWebServer(cloud.Fabric(), ep, workload.WebServerConfig{})
		if err != nil {
			return err
		}
		servers = append(servers, srv)
	}
	farm, err := workload.NewWebFarm(servers...)
	if err != nil {
		return err
	}

	// Clients in rack 3 fire 50 req/s for 60 virtual seconds.
	clients := []workload.Endpoint{
		{Host: cloud.Topo.Racks[3][10]},
		{Host: cloud.Topo.Racks[3][11]},
		{Host: cloud.Topo.Racks[3][12]},
	}
	gen, err := workload.NewLoadGen(cloud.Fabric(), farm, clients, workload.LoadGenConfig{
		RatePerSecond: 50,
		Duration:      60 * time.Second,
	})
	if err != nil {
		return err
	}
	cloud.Mu.Lock()
	gen.Start()
	cloud.Mu.Unlock()

	// Observe mid-run.
	if err := cloud.RunFor(30 * time.Second); err != nil {
		return err
	}
	cloud.Mu.Lock()
	fmt.Printf("t=30s: max link utilisation %.1f%%, cloud draw %.1f W\n",
		cloud.Net.MaxLinkUtilisation()*100, cloud.PowerDraw())
	cloud.Mu.Unlock()

	// Drain.
	if err := cloud.RunFor(45 * time.Second); err != nil {
		return err
	}
	fmt.Printf("issued=%d completed=%d failed=%d\n", gen.Issued, gen.Completed, gen.Failed)
	fmt.Printf("latency ms: p50=%.1f p95=%.1f p99=%.1f\n",
		gen.Latency.Quantile(0.5), gen.Latency.Quantile(0.95), gen.Latency.Quantile(0.99))
	fmt.Printf("goodput: %.1f req/s\n", gen.GoodputPerSecond())
	for i, srv := range servers {
		fmt.Printf("replica %d served %d requests\n", i, srv.Served())
	}
	return nil
}
