# CI and humans run the same commands: the ci.yml jobs call exactly
# these targets' recipes.

GO ?= go

.PHONY: all build test race bench bench-smoke lint ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark pass with memory stats — the reproduction gate plus the
# BenchmarkScenario* perf trajectory.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# One iteration of everything; what CI runs on every push.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

lint:
	$(GO) vet ./...
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

ci: build lint test race bench-smoke
