# CI and humans run the same commands: the ci.yml jobs call exactly
# these targets' recipes.

GO ?= go

.PHONY: all build test race race-megafleet bench bench-smoke bench-json trace-artifact determinism-single-core service-smoke crash-gate lint ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The 1000-node scale gate under the race detector: the scenario engine,
# incremental solver, parallel domain solving and route cache all run
# full-size with -race on. (`go test -race ./...` additionally runs
# TestParallelSolveMatchesSerial, which forces the solve pool on for
# every catalog scenario — the full race coverage of the kernel.)
race-megafleet:
	$(GO) test -race -run='^$$' -bench='^BenchmarkScenarioMegafleet1000$$' -benchtime=1x .

# Full benchmark pass with memory stats — the reproduction gate plus the
# BenchmarkScenario* perf trajectory.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# One iteration of everything; what CI runs on every push. Includes the
# megafleet-1000000 run-phase scale gate (a million nodes under a
# wall-time budget) plus the 100k and 10k gates it builds on.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

# The determinism-vs-parallelism proof: every digest pin and every
# serial/parallel/lazy/eager/calendar-vs-heap/sharded-advance
# equivalence gate (the *MatchesSerial pattern includes the pod-sharded
# windowed advance, its randomized cross-pod scenario, and the fat-tree
# cross-pod gate), plus the checkpoint-resume byte-identity and
# study-digest gates, executed with a single scheduler thread. Together with the default-GOMAXPROCS test
# job this shows the traces are independent of how much hardware ran
# them.
determinism-single-core:
	GOMAXPROCS=1 $(GO) test -run 'TraceDigest|MatchesSerial|MatchesEager|MatchesFullSolver|BitwiseEquivalence|MatchesClassicHeap|CheckpointResume|StudyDigests' ./internal/scenario ./internal/netsim ./internal/sim

# The benchmark trajectory: one run of every canned scenario, written as
# BENCH_PR10.json (per-scenario sim-s/wall-s, events/s, peak-RSS,
# run-phase wall series, the fleet-construction wall-time series, the
# flush/solve phase-profile wall split, trace digests, the
# classic-vs-calendar scheduler events/s series at 10k/100k/1M nodes,
# the serial-vs-sharded advance series at the same scales, and the
# synthesis-vs-Dijkstra routing series on the 100k fat-tree — digest
# equality between arms asserted before the file is written — plus the
# PR 1–PR 4 baselines). CI uploads it as an artifact.
bench-json:
	$(GO) run ./cmd/piscale -bench-json BENCH_PR10.json

# A Perfetto-loadable span trace of the 1000-node scale scenario:
# advance slices, per-domain netsim flushes and checkpoint spans with
# dual virtual/wall stamps. CI uploads run.trace.json as an artifact.
trace-artifact:
	$(GO) run ./cmd/piscale -scenario megafleet-1000 -q -trace-out run.trace.json

# The session-service HTTP gate: piscaled boots its API on a loopback
# listener and drives create image → fork session → advance → inject →
# checkpoint → fork → run both arms out over real HTTP; the forks'
# trace digests must be bit-identical to each other and to the same
# history on a bare in-process run, inside the wall budget. The gate
# also scrapes /v1/metrics mid-advance and requires the core series
# set present and monotone.
service-smoke:
	$(GO) run ./cmd/piscaled -smoke -smoke-budget 120s

# The crash-recovery gate, under the race detector: piscaled re-execs
# itself as a child daemon over a data directory, SIGKILLs it while two
# journaled sessions are mid-advance, restarts it and requires every
# session recovered by verified replay to its last durable offset —
# then finishes the runs and compares their trace digests bit-for-bit
# against uninterrupted control arms, plus a SIGTERM drain/recover
# round. The data directory (quarantined journals included) survives
# in crash-data/ on failure.
crash-gate:
	rm -rf crash-data
	$(GO) run -race ./cmd/piscaled -crash-gate -crash-budget 8m -crash-dir crash-data

lint:
	$(GO) vet ./...
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

ci: build lint test race race-megafleet bench-smoke determinism-single-core service-smoke crash-gate
