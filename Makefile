# CI and humans run the same commands: the ci.yml jobs call exactly
# these targets' recipes.

GO ?= go

.PHONY: all build test race race-megafleet bench bench-smoke bench-json lint ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The 1000-node scale gate under the race detector: the scenario engine,
# incremental solver and route cache all run full-size with -race on.
race-megafleet:
	$(GO) test -race -run='^$$' -bench='^BenchmarkScenarioMegafleet1000$$' -benchtime=1x .

# Full benchmark pass with memory stats — the reproduction gate plus the
# BenchmarkScenario* perf trajectory.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# One iteration of everything; what CI runs on every push. Includes the
# megafleet-100000 scale gate (100k nodes under a wall-time budget) and
# the megafleet-10000 gate it superseded.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

# The benchmark trajectory: one run of every canned scenario, written as
# BENCH_PR3.json (per-scenario sim-s/wall-s, events/s, ns/op, the fleet-
# construction wall-time series, trace digests, plus the PR 1 and PR 2
# baselines). CI uploads it as an artifact.
bench-json:
	$(GO) run ./cmd/piscale -bench-json BENCH_PR3.json

lint:
	$(GO) vet ./...
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

ci: build lint test race race-megafleet bench-smoke
