// Command picloud boots the full 56-node Glasgow Raspberry Pi Cloud and
// serves pimaster's REST API and web control panel (Fig. 4) on a real
// HTTP listener while the simulation tracks the wall clock.
//
// Usage:
//
//	picloud -addr :8080 -speed 1.0
//
// Then browse http://localhost:8080/panel, or drive the API with pictl.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/topology"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address for pimaster")
	speed := flag.Float64("speed", 1.0, "virtual seconds per wall second")
	racks := flag.Int("racks", topology.DefaultRacks, "number of racks")
	hostsPerRack := flag.Int("hosts-per-rack", topology.DefaultHostsPerRack, "Pis per rack")
	fabric := flag.String("fabric", "multi-root-tree", "fabric: multi-root-tree, fat-tree, leaf-spine")
	placer := flag.String("placer", "best-fit", "default placement algorithm")
	flag.Parse()

	if err := run(*addr, *speed, *racks, *hostsPerRack, *fabric, *placer); err != nil {
		fmt.Fprintln(os.Stderr, "picloud:", err)
		os.Exit(1)
	}
}

func run(addr string, speed float64, racks, hostsPerRack int, fabricName, placerName string) error {
	var fabric topology.Fabric
	switch fabricName {
	case "multi-root-tree":
		fabric = topology.FabricMultiRoot
	case "fat-tree":
		fabric = topology.FabricFatTree
	case "leaf-spine":
		fabric = topology.FabricLeafSpine
	default:
		return fmt.Errorf("unknown fabric %q", fabricName)
	}
	pl, err := placement.ByName(placerName)
	if err != nil {
		return err
	}
	cloud, err := core.New(core.Config{
		Racks:        racks,
		HostsPerRack: hostsPerRack,
		Fabric:       fabric,
		Placer:       pl,
	})
	if err != nil {
		return err
	}
	defer cloud.Close()

	// Housekeeping: per-node monitoring samples and DHCP lease sweeping
	// run on the simulation clock.
	cloud.Mu.Lock()
	for _, node := range cloud.Nodes() {
		node.Daemon.StartSampling(5 * time.Second)
	}
	cloud.Master.StartLeaseSweeper(15 * time.Minute)
	cloud.Mu.Unlock()

	fmt.Printf("PiCloud up: %d nodes in %d racks on a %s fabric\n",
		len(cloud.Nodes()), racks, fabric)
	fmt.Printf("idle power draw: %.1f W\n", cloud.PowerDraw())
	fmt.Printf("pimaster: http://localhost%s/panel\n", addr)

	stop := make(chan struct{})
	go cloud.DriveRealTime(speed, stop)

	srv := &http.Server{Addr: addr, Handler: cloud.Master.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		close(stop)
		return err
	case <-sig:
		fmt.Println("\nshutting down")
		close(stop)
		return srv.Close()
	}
}
