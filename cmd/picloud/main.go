// Command picloud boots the full 56-node Glasgow Raspberry Pi Cloud and
// serves pimaster's REST API and web control panel (Fig. 4) on a real
// HTTP listener while the simulation tracks the wall clock.
//
// Usage:
//
//	picloud -addr :8080 -speed 1.0
//	picloud -scenario rack-blackout -speed 10
//	picloud -scenarios
//
// Then browse http://localhost:8080/panel, or drive the API with pictl.
// With -scenario, the named canned scenario's traffic and fault timeline
// replay against the live cloud while the API serves, so the panel shows
// a fleet under fire.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliconfig"
	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/topology"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address for pimaster")
	speed := flag.Float64("speed", 1.0, "virtual seconds per wall second")
	placer := flag.String("placer", "best-fit", "default placement algorithm")
	scen := flag.String("scenario", "", "canned scenario to replay against the live cloud (see -scenarios)")
	listScen := flag.Bool("scenarios", false, "list canned scenarios and exit")
	// The fleet shape, fabric and kernel-mode knobs are the cliconfig
	// surface shared with piscale and piscaled; picloud's defaults stay
	// the published 56-node PiCloud.
	common := cliconfig.Common{
		Racks:        topology.DefaultRacks,
		HostsPerRack: topology.DefaultHostsPerRack,
		Fabric:       "multi-root-tree",
		Seed:         -1,
	}
	common.Register(flag.CommandLine)
	flag.Parse()

	if *listScen {
		fmt.Print("canned scenarios:\n" + scenario.Describe())
		return
	}
	if err := run(*addr, *speed, common, *placer, *scen); err != nil {
		fmt.Fprintln(os.Stderr, "picloud:", err)
		os.Exit(1)
	}
}

func run(addr string, speed float64, common cliconfig.Common, placerName, scenarioName string) error {
	fabric, err := cliconfig.ParseFabric(common.Fabric)
	if err != nil {
		return err
	}
	pl, err := placement.ByName(placerName)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Racks:        common.Racks,
		HostsPerRack: common.HostsPerRack,
		Fabric:       fabric,
		Placer:       pl,
		Kernel:       common.Kernel(),
	}
	if common.Seed >= 0 {
		cfg.Seed = common.Seed
	}
	cloud, err := core.New(cfg)
	if err != nil {
		return err
	}
	defer cloud.Close()

	// Housekeeping: per-node monitoring samples and DHCP lease sweeping
	// run on the simulation clock.
	cloud.Mu.Lock()
	for _, node := range cloud.Nodes() {
		node.Daemon.StartSampling(5 * time.Second)
	}
	cloud.Master.StartLeaseSweeper(15 * time.Minute)
	cloud.Mu.Unlock()

	fmt.Printf("PiCloud up: %d nodes in %d racks on a %s fabric\n",
		len(cloud.Nodes()), common.Racks, fabric)
	fmt.Printf("idle power draw: %.1f W\n", cloud.PowerDraw())
	host := addr
	if strings.HasPrefix(host, ":") {
		host = "localhost" + host
	}
	fmt.Printf("pimaster: http://%s/panel\n", host)

	stop := make(chan struct{})

	if scenarioName != "" {
		spec, err := scenario.Catalog(scenarioName)
		if err != nil {
			return err
		}
		run, err := scenario.Install(cloud, spec)
		if err != nil {
			return err
		}
		run.OnEvent = func(ev scenario.TraceEvent) { fmt.Println("scenario:", ev) }
		fmt.Printf("scenario %s installed: %s\n", spec.Name, spec.Description)
		go run.DriveActions(speed, stop)
	}

	go cloud.DriveRealTime(speed, stop)

	srv := &http.Server{Addr: addr, Handler: cloud.Master.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		close(stop)
		return err
	case <-sig:
		fmt.Println("\nshutting down")
		close(stop)
		return srv.Close()
	}
}
