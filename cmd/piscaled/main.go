// Command piscaled is the simulator's service mode: a long-running
// multi-tenant session daemon serving the versioned REST+SSE API over
// shared base images and forkable live sessions (see internal/session).
// Where piscale runs one scenario per process, piscaled holds many
// researchers' what-if branches at once: build a base image from a
// catalog scenario, fork as many sessions off it as wanted, inject
// divergent faults into each, and stream per-rack telemetry while
// virtual time advances — every session bit-identical to the same
// scenario run standalone.
//
// With -data-dir the daemon is crash-safe: base images persist as
// replay recipes, every session appends a write-ahead journal, and a
// restart on the same directory rebuilds the whole tenant population
// by verified replay (see internal/store and internal/session's
// recovery). SIGTERM drains gracefully — in-flight advances yield at
// their next slice boundary with their progress journaled — while
// SIGKILL merely loses the un-journaled tail of in-flight advances:
// either way the next lifetime recovers every session to its last
// durable offset, bit-identically.
//
// Usage:
//
//	piscaled -addr :9090
//	piscaled -addr :9090 -data-dir /var/lib/piscaled
//	piscaled -addr :9090 -image base=megafleet-1000@30s
//	piscaled -addr :9090 -pprof
//	piscaled -smoke -smoke-budget 120s
//	piscaled -crash-gate -crash-budget 8m
//
// The -smoke flag runs the CI gate instead of serving: it starts the
// API on a loopback listener and drives create → advance → inject →
// checkpoint → fork → digest-compare over real HTTP, failing on any
// divergence or on blowing the wall budget. The -crash-gate flag runs
// the crash-recovery gate: it re-execs the daemon as a child process
// over a data directory, SIGKILLs it mid-advance, restarts it and
// proves every session recovers — digests verified — then finishes the
// runs and compares them bit-for-bit against uninterrupted arms.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliconfig"
	"repro/internal/session"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address for the session API")
	image := flag.String("image", "", "pre-build a base image at startup: name=scenario@offset (e.g. base=megafleet-1000@30s)")
	dataDir := flag.String("data-dir", "", "durable store directory: persist images, journal sessions, recover on restart")
	smoke := flag.Bool("smoke", false, "run the HTTP smoke gate against an in-process server, then exit")
	smokeBudget := flag.Duration("smoke-budget", 2*time.Minute, "wall budget for -smoke")
	crashGate := flag.Bool("crash-gate", false, "run the kill-and-recover gate against child daemons, then exit")
	crashBudget := flag.Duration("crash-budget", 8*time.Minute, "wall budget for -crash-gate")
	crashDir := flag.String("crash-dir", "", "data directory for -crash-gate (default: a temp dir; kept on failure)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the API listener")
	common := cliconfig.Common{Seed: -1}
	common.Register(flag.CommandLine)
	flag.Parse()

	if *smoke {
		if err := runSmoke(*smokeBudget); err != nil {
			fmt.Fprintln(os.Stderr, "piscaled: smoke:", err)
			os.Exit(1)
		}
		return
	}
	if *crashGate {
		if err := runCrashGate(*crashBudget, *crashDir); err != nil {
			fmt.Fprintln(os.Stderr, "piscaled: crash-gate:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(*addr, *image, *dataDir, common, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "piscaled:", err)
		os.Exit(1)
	}
}

func serve(addr, image, dataDir string, common cliconfig.Common, pprofOn bool) error {
	mgr := session.NewManager()

	if dataDir != "" {
		st, err := store.Open(dataDir)
		if err != nil {
			return err
		}
		start := time.Now()
		rep, err := mgr.Recover(st)
		if err != nil {
			return fmt.Errorf("recover %s: %w", dataDir, err)
		}
		fmt.Printf("recovered from %s in %v: %d images rebuilt, %d sessions recovered, %d quarantined\n",
			dataDir, time.Since(start).Round(time.Millisecond),
			len(rep.ImagesRebuilt), len(rep.SessionsRecovered), len(rep.SessionsQuarantined))
		for id, reason := range rep.SessionsQuarantined {
			fmt.Printf("  quarantined %s: %s\n", id, reason)
		}
		for name, reason := range rep.ImagesQuarantined {
			fmt.Printf("  quarantined image %q: %s\n", name, reason)
		}
	}

	if image != "" {
		name, req, at, err := parseImageFlag(image, common)
		if err != nil {
			return err
		}
		start := time.Now()
		img, err := mgr.CreateImage(name, req, at)
		if err != nil {
			// A recovered store may already hold the image from a prior
			// lifetime; that is the point of persistence, not an error.
			if dataDir != "" && strings.Contains(err.Error(), "already exists") {
				fmt.Printf("base image %q already recovered\n", name)
			} else {
				return err
			}
		} else {
			fmt.Printf("base image %q ready: %s@%v, fingerprint %s (built in %v)\n",
				img.Name, img.Scenario, img.At, img.Fingerprint[:16], time.Since(start).Round(time.Millisecond))
		}
	}

	handler := mgr.Handler()
	if pprofOn {
		// Profiling endpoints are opt-in: they expose heap contents and
		// goroutine stacks, so they never ride along silently.
		root := http.NewServeMux()
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		root.Handle("/", handler)
		handler = root
	}
	srv := &http.Server{
		Addr:    addr,
		Handler: handler,
		// SSE responses stream indefinitely, so no WriteTimeout; header
		// reads and idle keep-alives are bounded so stuck clients cannot
		// pin connections forever.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Printf("piscaled: session API on %s (try GET /v1/healthz)\n", addr)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
		// Graceful drain: every in-flight advance yields at its next
		// slice boundary with its progress journaled, SSE feeds flush a
		// terminal marker, then the listener closes. Journals stay on
		// disk — the next lifetime recovers every session from them.
		fmt.Println("\ndraining for shutdown")
		mgr.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return srv.Close()
		}
		fmt.Println("drained; journals are current")
		return nil
	}
}

// parseImageFlag decodes name=scenario@offset, applying the shared
// command-line overrides to the scenario.
func parseImageFlag(s string, common cliconfig.Common) (string, cliconfig.SpecRequest, time.Duration, error) {
	name, rest, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return "", cliconfig.SpecRequest{}, 0, fmt.Errorf("-image wants name=scenario@offset, got %q", s)
	}
	scen, offset, ok := strings.Cut(rest, "@")
	if !ok {
		return "", cliconfig.SpecRequest{}, 0, fmt.Errorf("-image wants name=scenario@offset, got %q", s)
	}
	at, err := time.ParseDuration(offset)
	if err != nil {
		return "", cliconfig.SpecRequest{}, 0, fmt.Errorf("-image offset: %w", err)
	}
	return name, common.SpecRequest(scen), at, nil
}
