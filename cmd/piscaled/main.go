// Command piscaled is the simulator's service mode: a long-running
// multi-tenant session daemon serving the versioned REST+SSE API over
// shared base images and forkable live sessions (see internal/session).
// Where piscale runs one scenario per process, piscaled holds many
// researchers' what-if branches at once: build a base image from a
// catalog scenario, fork as many sessions off it as wanted, inject
// divergent faults into each, and stream per-rack telemetry while
// virtual time advances — every session bit-identical to the same
// scenario run standalone.
//
// Usage:
//
//	piscaled -addr :9090
//	piscaled -addr :9090 -image base=megafleet-1000@30s
//	piscaled -smoke -smoke-budget 120s
//
// The -smoke flag runs the CI gate instead of serving: it starts the
// API on a loopback listener and drives create → advance → inject →
// checkpoint → fork → digest-compare over real HTTP, failing on any
// divergence or on blowing the wall budget.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliconfig"
	"repro/internal/session"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address for the session API")
	image := flag.String("image", "", "pre-build a base image at startup: name=scenario@offset (e.g. base=megafleet-1000@30s)")
	smoke := flag.Bool("smoke", false, "run the HTTP smoke gate against an in-process server, then exit")
	smokeBudget := flag.Duration("smoke-budget", 2*time.Minute, "wall budget for -smoke")
	common := cliconfig.Common{Seed: -1}
	common.Register(flag.CommandLine)
	flag.Parse()

	if *smoke {
		if err := runSmoke(*smokeBudget); err != nil {
			fmt.Fprintln(os.Stderr, "piscaled: smoke:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(*addr, *image, common); err != nil {
		fmt.Fprintln(os.Stderr, "piscaled:", err)
		os.Exit(1)
	}
}

func serve(addr, image string, common cliconfig.Common) error {
	mgr := session.NewManager()
	defer mgr.Close()

	if image != "" {
		name, req, at, err := parseImageFlag(image, common)
		if err != nil {
			return err
		}
		start := time.Now()
		img, err := mgr.CreateImage(name, req, at)
		if err != nil {
			return err
		}
		fmt.Printf("base image %q ready: %s@%v, fingerprint %s (built in %v)\n",
			img.Name, img.Scenario, img.At, img.Fingerprint[:16], time.Since(start).Round(time.Millisecond))
	}

	srv := &http.Server{Addr: addr, Handler: mgr.Handler()}
	fmt.Printf("piscaled: session API on %s (try GET /v1/healthz)\n", addr)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
		fmt.Println("\nshutting down")
		return srv.Close()
	}
}

// parseImageFlag decodes name=scenario@offset, applying the shared
// command-line overrides to the scenario.
func parseImageFlag(s string, common cliconfig.Common) (string, cliconfig.SpecRequest, time.Duration, error) {
	name, rest, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return "", cliconfig.SpecRequest{}, 0, fmt.Errorf("-image wants name=scenario@offset, got %q", s)
	}
	scen, offset, ok := strings.Cut(rest, "@")
	if !ok {
		return "", cliconfig.SpecRequest{}, 0, fmt.Errorf("-image wants name=scenario@offset, got %q", s)
	}
	at, err := time.ParseDuration(offset)
	if err != nil {
		return "", cliconfig.SpecRequest{}, 0, fmt.Errorf("-image offset: %w", err)
	}
	return name, common.SpecRequest(scen), at, nil
}
