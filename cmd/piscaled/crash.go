// The -crash-gate: the end-to-end crash-recovery proof, used by CI.
// It re-execs this binary as a child daemon over a durable data
// directory, drives two sessions off one shared base image (journaled
// advances, divergent fault injections), launches long advances and
// SIGKILLs the daemon while both kernels are mid-flight. The restarted
// daemon must recover both sessions by verified replay — their state
// digests proven against the journals — after which the gate drives
// the recovered runs onward and requires their trace digests to be
// bit-identical to uninterrupted control arms computed in-process.
// A final SIGTERM lifetime proves graceful drain: the daemon exits
// cleanly and a third lifetime recovers every session exactly where
// the drain journaled it.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/cliconfig"
	"repro/internal/scenario"
	"repro/internal/session"
)

// The gate's shared timeline (virtual time).
const (
	crashScenario = "megafleet-1000"
	crashDuration = 10 * time.Minute // override: runway so the kill lands mid-advance
	crashImageAt  = 30 * time.Second
	crashInjectAt = 60 * time.Second // sessions pause here to inject
	crashKillMark = 85 * time.Second // SIGKILL once both sessions pass this
	crashFinalAt  = 150 * time.Second
)

type crashArm struct {
	fault  cliconfig.FaultRequest
	id     string // session id, assigned at create
	digest string // control digest at crashFinalAt
}

func runCrashGate(budget time.Duration, dir string) (err error) {
	start := time.Now()
	deadline := start.Add(budget)
	tempDir := dir == ""
	if tempDir {
		if dir, err = os.MkdirTemp("", "piscaled-crash-*"); err != nil {
			return err
		}
	}
	defer func() {
		if err != nil {
			fmt.Printf("crash-gate: FAIL — data dir kept at %s\n", dir)
			dumpQuarantine(dir)
		} else if tempDir {
			os.RemoveAll(dir)
		}
	}()

	arms := []*crashArm{
		{fault: cliconfig.FaultRequest{Kind: "rack-fail", Rack: 3,
			At: cliconfig.Duration(70 * time.Second), Outage: cliconfig.Duration(20 * time.Second)}},
		{fault: cliconfig.FaultRequest{Kind: "rack-fail", Rack: 7,
			At: cliconfig.Duration(75 * time.Second), Outage: cliconfig.Duration(30 * time.Second)}},
	}
	spec := cliconfig.SpecRequest{Scenario: crashScenario, Duration: cliconfig.Duration(crashDuration)}

	// Control arms run concurrently with the child's first lifetime: the
	// same history on bare in-process runs, never interrupted.
	var controls sync.WaitGroup
	controlErr := make([]error, len(arms))
	for i, arm := range arms {
		controls.Add(1)
		go func() {
			defer controls.Done()
			controlErr[i] = runControlArm(spec, arm)
		}()
	}

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	addr, err := pickAddr()
	if err != nil {
		return err
	}
	base := "http://" + addr
	fmt.Printf("crash-gate: data dir %s, child on %s (budget %v)\n", dir, addr, budget)

	// ---- Lifetime 1: build state, then die hard mid-advance. ----
	child, err := startChild(exe, addr, dir)
	if err != nil {
		return err
	}
	defer func() {
		if child != nil && child.Process != nil {
			_ = child.Process.Kill()
			_ = child.Wait()
		}
	}()
	if err := waitReady(base, deadline); err != nil {
		return fmt.Errorf("lifetime 1: %w", err)
	}
	if err := postJSON(base+"/v1/images", map[string]any{
		"name": "crash-base", "at_ns": int64(crashImageAt), "spec": spec,
	}, nil); err != nil {
		return fmt.Errorf("create image: %w", err)
	}
	for i, arm := range arms {
		var st session.Status
		if err := postJSON(base+"/v1/sessions", map[string]any{"base_image": "crash-base"}, &st); err != nil {
			return fmt.Errorf("create session %d: %w", i, err)
		}
		arm.id = st.ID
		// Journaled history before the crash: pause at the inject offset,
		// inject this arm's divergent fault, then two more durable
		// advances so recovery replays a multi-record journal.
		if err := postJSON(base+"/v1/sessions/"+st.ID+"/advance", map[string]any{"to_ns": int64(crashInjectAt)}, nil); err != nil {
			return fmt.Errorf("advance %s: %w", st.ID, err)
		}
		if err := postJSON(base+"/v1/sessions/"+st.ID+"/inject", arm.fault, nil); err != nil {
			return fmt.Errorf("inject %s: %w", st.ID, err)
		}
		for _, to := range []time.Duration{70 * time.Second, 80 * time.Second} {
			if err := postJSON(base+"/v1/sessions/"+st.ID+"/advance", map[string]any{"to_ns": int64(to)}, nil); err != nil {
				return fmt.Errorf("advance %s to %v: %w", st.ID, to, err)
			}
		}
	}
	fmt.Printf("crash-gate: 2 sessions journaled to 80s t+%v\n", time.Since(start).Round(time.Millisecond))

	// Long advances in flight; their progress past the last journal
	// record is exactly what the SIGKILL is about to destroy.
	for _, arm := range arms {
		url := base + "/v1/sessions/" + arm.id + "/advance"
		go func() {
			_ = rawPost(url, map[string]any{"to_ns": int64(crashDuration)})
		}()
	}
	if err := waitOffsets(base, arms, crashKillMark, deadline); err != nil {
		return err
	}
	if err := child.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL: %w", err)
	}
	_ = child.Wait()
	fmt.Printf("crash-gate: SIGKILLed mid-advance past %v t+%v\n", crashKillMark, time.Since(start).Round(time.Millisecond))

	// ---- Lifetime 2: recover, verify, finish the runs. ----
	if child, err = startChild(exe, addr, dir); err != nil {
		return err
	}
	if err := waitReady(base, deadline); err != nil {
		return fmt.Errorf("lifetime 2: %w", err)
	}
	hz, err := fetchHealthz(base)
	if err != nil {
		return err
	}
	if len(hz.Quarantined) != 0 {
		return fmt.Errorf("recovery quarantined sessions: %v", hz.Quarantined)
	}
	for _, arm := range arms {
		det := hz.session(arm.id)
		if det == nil {
			return fmt.Errorf("session %s not recovered (healthz lists %d sessions)", arm.id, len(hz.SessionDetail))
		}
		if det.State != session.StateRecovered {
			return fmt.Errorf("session %s state %q after restart, want %q", arm.id, det.State, session.StateRecovered)
		}
		if got := time.Duration(det.OffsetNS); got != 80*time.Second {
			return fmt.Errorf("session %s recovered at %v, want the last durable offset 80s", arm.id, got)
		}
	}
	fmt.Printf("crash-gate: both sessions recovered + digest-verified at 80s t+%v\n", time.Since(start).Round(time.Millisecond))

	controls.Wait()
	for i, cerr := range controlErr {
		if cerr != nil {
			return fmt.Errorf("control arm %d: %w", i, cerr)
		}
	}
	for _, arm := range arms {
		var st session.Status
		if err := postJSON(base+"/v1/sessions/"+arm.id+"/advance", map[string]any{"to_ns": int64(crashFinalAt)}, &st); err != nil {
			return fmt.Errorf("post-recovery advance %s: %w", arm.id, err)
		}
		if st.TraceDigest != arm.digest {
			return fmt.Errorf("session %s recovered run diverged at %v: digest %s, uninterrupted arm %s",
				arm.id, crashFinalAt, st.TraceDigest, arm.digest)
		}
	}
	fmt.Printf("crash-gate: recovered runs reproduce uninterrupted digests at %v t+%v\n", crashFinalAt, time.Since(start).Round(time.Millisecond))

	// ---- Lifetime 3: graceful drain, then recover from the drain. ----
	if err := child.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	if err := child.Wait(); err != nil {
		return fmt.Errorf("drained child exited uncleanly: %w", err)
	}
	if child, err = startChild(exe, addr, dir); err != nil {
		return err
	}
	if err := waitReady(base, deadline); err != nil {
		return fmt.Errorf("lifetime 3: %w", err)
	}
	for _, arm := range arms {
		var st session.Status
		if err := getJSON(base+"/v1/sessions/"+arm.id, &st); err != nil {
			return fmt.Errorf("lifetime 3 status %s: %w", arm.id, err)
		}
		if st.Offset != crashFinalAt || st.TraceDigest != arm.digest {
			return fmt.Errorf("session %s after drain+restart: offset %v digest %s, want %v %s",
				arm.id, st.Offset, st.TraceDigest, crashFinalAt, arm.digest)
		}
	}
	_ = child.Process.Signal(syscall.SIGTERM)
	_ = child.Wait()
	child = nil
	if time.Now().After(deadline) {
		return fmt.Errorf("wall budget exceeded: %v over %v", time.Since(start), budget)
	}
	fmt.Printf("crash-gate: PASS — SIGKILL and SIGTERM lifetimes both recovered bit-identically in %v (budget %v)\n",
		time.Since(start).Round(time.Millisecond), budget)
	return nil
}

// runControlArm performs the arm's exact history on a bare in-process
// run, never interrupted: cold build, pause at the inject offset,
// inject, run to the comparison offset, digest.
func runControlArm(req cliconfig.SpecRequest, arm *crashArm) error {
	spec, err := req.Resolve()
	if err != nil {
		return err
	}
	f, err := arm.fault.Fault()
	if err != nil {
		return err
	}
	r, err := scenario.New(spec)
	if err != nil {
		return err
	}
	defer r.Cloud.Close()
	if err := r.RunTo(crashInjectAt); err != nil {
		return err
	}
	if err := r.Inject(f); err != nil {
		return err
	}
	if err := r.RunTo(crashFinalAt); err != nil {
		return err
	}
	arm.digest = scenario.DigestTrace(r.Trace())
	return nil
}

// startChild launches the daemon child serving addr over dir.
func startChild(exe, addr, dir string) (*exec.Cmd, error) {
	cmd := exec.Command(exe, "-addr", addr, "-data-dir", dir)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start child: %w", err)
	}
	return cmd, nil
}

// pickAddr reserves a loopback port for the child daemons.
func pickAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// healthzReply is the slice of /v1/healthz the gate reads.
type healthzReply struct {
	OK            bool `json:"ok"`
	SessionDetail []struct {
		ID       string `json:"id"`
		State    string `json:"state"`
		OffsetNS int64  `json:"offset_ns"`
	} `json:"session_detail"`
	Quarantined map[string]string `json:"sessions_quarantined"`
}

func (h *healthzReply) session(id string) *struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	OffsetNS int64  `json:"offset_ns"`
} {
	for i := range h.SessionDetail {
		if h.SessionDetail[i].ID == id {
			return &h.SessionDetail[i]
		}
	}
	return nil
}

func fetchHealthz(base string) (*healthzReply, error) {
	var hz healthzReply
	if err := getJSON(base+"/v1/healthz", &hz); err != nil {
		return nil, err
	}
	return &hz, nil
}

// waitReady polls healthz until the daemon answers (recovery replay
// happens before the listener opens, so this also waits recovery out).
func waitReady(base string, deadline time.Time) error {
	for {
		var hz healthzReply
		if err := getJSON(base+"/v1/healthz", &hz); err == nil && hz.OK {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon on %s not ready before the deadline", base)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// waitOffsets polls until every arm's session has advanced past mark —
// i.e. every kernel is provably mid-advance beyond its last durable
// record — so the SIGKILL that follows lands exactly where the gate
// wants it.
func waitOffsets(base string, arms []*crashArm, mark time.Duration, deadline time.Time) error {
	for {
		hz, err := fetchHealthz(base)
		if err != nil {
			return fmt.Errorf("polling offsets: %w", err)
		}
		past := 0
		for _, arm := range arms {
			if det := hz.session(arm.id); det != nil && time.Duration(det.OffsetNS) > mark {
				past++
			}
		}
		if past == len(arms) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sessions never passed %v before the deadline", mark)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// rawPost fires one JSON POST with no retry — the in-flight advance the
// gate intends to kill must not be re-issued by a helpful client.
func rawPost(url string, body any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// dumpQuarantine prints quarantined journals and reasons on failure.
func dumpQuarantine(dir string) {
	qdir := filepath.Join(dir, "quarantine")
	entries, err := os.ReadDir(qdir)
	if err != nil || len(entries) == 0 {
		return
	}
	fmt.Printf("crash-gate: quarantine contents of %s:\n", qdir)
	for _, e := range entries {
		fmt.Printf("  %s\n", e.Name())
		if filepath.Ext(e.Name()) == ".reason" {
			if data, err := os.ReadFile(filepath.Join(qdir, e.Name())); err == nil {
				fmt.Printf("    %s\n", string(data))
			}
		}
	}
}
