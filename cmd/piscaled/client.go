// Shared HTTP client helpers for the self-driving modes (-smoke,
// -crash-gate): JSON POST/GET with bounded exponential backoff plus
// jitter. Transient transport failures — a listener not yet open, a
// connection reset, a 503 from a draining daemon — retry; everything
// the server actually decided (4xx, 5xx other than 503) surfaces
// immediately.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

const (
	retryAttempts = 6
	retryBase     = 50 * time.Millisecond
	retryCap      = 2 * time.Second
)

// backoff sleeps for the attempt's exponential delay with ±50% jitter.
func backoff(attempt int) {
	d := retryBase << attempt
	if d > retryCap {
		d = retryCap
	}
	jittered := d/2 + time.Duration(rand.Int63n(int64(d)))
	time.Sleep(jittered)
}

// retryable reports whether the attempt outcome is worth retrying:
// transport errors (refused, reset, in-flight cut) and 503 (draining).
func retryable(resp *http.Response, err error) bool {
	if err != nil {
		return true
	}
	return resp.StatusCode == http.StatusServiceUnavailable
}

// doJSON runs one request-building closure under the retry policy and
// decodes the 2xx response into out.
func doJSON(build func() (*http.Request, error), out any) error {
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			backoff(attempt - 1)
		}
		req, err := build()
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if retryable(resp, err) {
			if err != nil {
				lastErr = err
			} else {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				lastErr = fmt.Errorf("%s: HTTP %d: %s", req.URL, resp.StatusCode, bytes.TrimSpace(body))
			}
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			var e struct {
				Error string `json:"error"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&e)
			return fmt.Errorf("%s: HTTP %d: %s", req.URL, resp.StatusCode, e.Error)
		}
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return fmt.Errorf("giving up after %d attempts: %w", retryAttempts, lastErr)
}

// postJSON posts body and decodes the 2xx response into out, retrying
// transient failures with backoff.
func postJSON(url string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return doJSON(func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}, out)
}

// getJSON fetches url and decodes the 2xx response into out, retrying
// transient failures with backoff.
func getJSON(url string, out any) error {
	return doJSON(func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	}, out)
}
