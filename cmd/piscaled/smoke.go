// The -smoke gate: a self-contained end-to-end exercise of the session
// API over real HTTP, used by CI. It boots the daemon on a loopback
// listener, builds a base image from megafleet-1000, forks a session,
// advances it, injects a divergent fault, checkpoints, forks a sibling
// mid-flight and runs both to the end — then proves the service kept
// the determinism contract: both forks' trace digests must be
// bit-identical to each other AND to the same history performed on a
// bare scenario.Run in-process (cold build, run to the fork point,
// inject the same fault, finish). The whole drive must finish inside
// the wall budget.
package main

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/cliconfig"
	"repro/internal/scenario"
	"repro/internal/session"
)

func runSmoke(budget time.Duration) error {
	start := time.Now()
	left := func() time.Duration { return budget - time.Since(start) }

	mgr := session.NewManager()
	defer mgr.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mgr.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("smoke: session API on %s (budget %v)\n", base, budget)

	const (
		scen     = "megafleet-1000"
		imageAt  = 30 * time.Second
		forkAt   = 60 * time.Second
		faultAt  = 70 * time.Second
		faultOut = 20 * time.Second
	)
	fault := cliconfig.FaultRequest{
		Kind: "rack-fail", Rack: 3,
		At: cliconfig.Duration(faultAt), Outage: cliconfig.Duration(faultOut),
	}

	// 1. Base image: the catalog scenario driven to 30s and captured.
	var img struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := postJSON(base+"/v1/images", map[string]any{
		"name": "smoke-base", "at_ns": int64(imageAt),
		"spec": map[string]any{"scenario": scen},
	}, &img); err != nil {
		return fmt.Errorf("create image: %w", err)
	}
	fmt.Printf("smoke: image smoke-base ready (fingerprint %s…) t+%v\n", img.Fingerprint[:16], time.Since(start).Round(time.Millisecond))

	// 2. Session from the image; stream its SSE feed concurrently.
	var st session.Status
	if err := postJSON(base+"/v1/sessions", map[string]any{"base_image": "smoke-base"}, &st); err != nil {
		return fmt.Errorf("create session: %w", err)
	}
	sseEvents := make(chan int, 1)
	go func() { sseEvents <- countSSE(base+"/v1/sessions/"+st.ID+"/events", 3*time.Second) }()

	// 3. Advance to the fork point, inject the divergent fault.
	if err := postJSON(base+"/v1/sessions/"+st.ID+"/advance", map[string]any{"to_ns": int64(forkAt)}, &st); err != nil {
		return fmt.Errorf("advance: %w", err)
	}
	var injected map[string]any
	if err := postJSON(base+"/v1/sessions/"+st.ID+"/inject", fault, &injected); err != nil {
		return fmt.Errorf("inject: %w", err)
	}

	// 4. Checkpoint, then fork a sibling carrying the same future.
	var chk session.CheckpointInfo
	if err := postJSON(base+"/v1/sessions/"+st.ID+"/checkpoint", map[string]any{}, &chk); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var sibling session.Status
	if err := postJSON(base+"/v1/sessions/"+st.ID+"/fork", map[string]any{}, &sibling); err != nil {
		return fmt.Errorf("fork: %w", err)
	}
	fmt.Printf("smoke: session %s checkpointed at %v (kernel %s…), forked %s t+%v\n",
		st.ID, chk.At, chk.KernelDigest[:16], sibling.ID, time.Since(start).Round(time.Millisecond))

	// 5. Run both to the end of the timeline and compare digests.
	digests := map[string]string{}
	for _, id := range []string{st.ID, sibling.ID} {
		var fin session.Status
		if err := postJSON(base+"/v1/sessions/"+id+"/advance", map[string]any{"to_ns": int64(24 * time.Hour)}, &fin); err != nil {
			return fmt.Errorf("final advance %s: %w", id, err)
		}
		if !fin.Finished {
			return fmt.Errorf("session %s not finished at %v", id, fin.Offset)
		}
		digests[id] = fin.TraceDigest
	}
	if digests[st.ID] != digests[sibling.ID] {
		return fmt.Errorf("fork diverged: %s got %s, %s got %s", st.ID, digests[st.ID], sibling.ID, digests[sibling.ID])
	}

	// 6. The standalone arm: the same history performed on a raw Run
	// in-process — cold build, run to the fork point, inject, finish.
	// The service must add nothing to and lose nothing from what the
	// identical API calls on a bare scenario.Run produce.
	spec, err := cliconfig.SpecRequest{Scenario: scen}.Resolve()
	if err != nil {
		return err
	}
	f, err := fault.Fault()
	if err != nil {
		return err
	}
	arm, err := scenario.New(spec)
	if err != nil {
		return fmt.Errorf("standalone arm: %w", err)
	}
	defer arm.Cloud.Close()
	if err := arm.RunTo(forkAt); err != nil {
		return fmt.Errorf("standalone arm: %w", err)
	}
	if err := arm.Inject(f); err != nil {
		return fmt.Errorf("standalone arm: %w", err)
	}
	rep, err := arm.Execute()
	if err != nil {
		return fmt.Errorf("standalone arm: %w", err)
	}
	if got := rep.TraceDigest(); got != digests[st.ID] {
		return fmt.Errorf("service trace digest %s != standalone %s", digests[st.ID], got)
	}

	if n := <-sseEvents; n < 1 {
		return fmt.Errorf("SSE feed delivered no events")
	}
	if left() < 0 {
		return fmt.Errorf("wall budget exceeded: %v over %v", time.Since(start), budget)
	}
	fmt.Printf("smoke: PASS — both forks and the standalone run share digest %s… in %v (budget %v)\n",
		digests[st.ID][:16], time.Since(start).Round(time.Millisecond), budget)
	return nil
}

// countSSE reads the session event stream for up to window and returns
// how many SSE events arrived.
func countSSE(url string, window time.Duration) int {
	client := &http.Client{Timeout: window}
	resp, err := client.Get(url)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	n := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: ") {
			n++
		}
	}
	return n
}
