// The -smoke gate: a self-contained end-to-end exercise of the session
// API over real HTTP, used by CI. It boots the daemon on a loopback
// listener, builds a base image from megafleet-1000, forks a session,
// advances it, injects a divergent fault, checkpoints, forks a sibling
// mid-flight and runs both to the end — then proves the service kept
// the determinism contract: both forks' trace digests must be
// bit-identical to each other AND to the same history performed on a
// bare scenario.Run in-process (cold build, run to the fork point,
// inject the same fault, finish). The whole drive must finish inside
// the wall budget.
//
// The gate also scrapes GET /v1/metrics before, during and after the
// first final advance: the mid-advance exposition must carry ≥20
// series including the core set from every layer, and counters must be
// monotone across the scrapes — proving the observability registry is
// live under load without perturbing the digests checked above.
package main

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliconfig"
	"repro/internal/scenario"
	"repro/internal/session"
)

func runSmoke(budget time.Duration) error {
	start := time.Now()
	left := func() time.Duration { return budget - time.Since(start) }

	mgr := session.NewManager()
	defer mgr.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mgr.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("smoke: session API on %s (budget %v)\n", base, budget)

	const (
		scen     = "megafleet-1000"
		imageAt  = 30 * time.Second
		forkAt   = 60 * time.Second
		faultAt  = 70 * time.Second
		faultOut = 20 * time.Second
	)
	fault := cliconfig.FaultRequest{
		Kind: "rack-fail", Rack: 3,
		At: cliconfig.Duration(faultAt), Outage: cliconfig.Duration(faultOut),
	}

	// 1. Base image: the catalog scenario driven to 30s and captured.
	var img struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := postJSON(base+"/v1/images", map[string]any{
		"name": "smoke-base", "at_ns": int64(imageAt),
		"spec": map[string]any{"scenario": scen},
	}, &img); err != nil {
		return fmt.Errorf("create image: %w", err)
	}
	fmt.Printf("smoke: image smoke-base ready (fingerprint %s…) t+%v\n", img.Fingerprint[:16], time.Since(start).Round(time.Millisecond))

	// 2. Session from the image; stream its SSE feed concurrently.
	var st session.Status
	if err := postJSON(base+"/v1/sessions", map[string]any{"base_image": "smoke-base"}, &st); err != nil {
		return fmt.Errorf("create session: %w", err)
	}
	sseEvents := make(chan int, 1)
	go func() { sseEvents <- countSSE(base+"/v1/sessions/"+st.ID+"/events", 3*time.Second) }()

	// 3. Advance to the fork point, inject the divergent fault.
	if err := postJSON(base+"/v1/sessions/"+st.ID+"/advance", map[string]any{"to_ns": int64(forkAt)}, &st); err != nil {
		return fmt.Errorf("advance: %w", err)
	}
	var injected map[string]any
	if err := postJSON(base+"/v1/sessions/"+st.ID+"/inject", fault, &injected); err != nil {
		return fmt.Errorf("inject: %w", err)
	}

	// 4. Checkpoint, then fork a sibling carrying the same future.
	var chk session.CheckpointInfo
	if err := postJSON(base+"/v1/sessions/"+st.ID+"/checkpoint", map[string]any{}, &chk); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var sibling session.Status
	if err := postJSON(base+"/v1/sessions/"+st.ID+"/fork", map[string]any{}, &sibling); err != nil {
		return fmt.Errorf("fork: %w", err)
	}
	fmt.Printf("smoke: session %s checkpointed at %v (kernel %s…), forked %s t+%v\n",
		st.ID, chk.At, chk.KernelDigest[:16], sibling.ID, time.Since(start).Round(time.Millisecond))

	// 5. Run both to the end of the timeline and compare digests. The
	// first final advance doubles as the metrics gate: /v1/metrics is
	// scraped before, mid-advance and after, and must expose the core
	// series set richly (≥20 series) with counters monotone across the
	// three scrapes — the scrape side of the zero-perturbation contract.
	finish := func(id string) (string, error) {
		var fin session.Status
		if err := postJSON(base+"/v1/sessions/"+id+"/advance", map[string]any{"to_ns": int64(24 * time.Hour)}, &fin); err != nil {
			return "", fmt.Errorf("final advance %s: %w", id, err)
		}
		if !fin.Finished {
			return "", fmt.Errorf("session %s not finished at %v", id, fin.Offset)
		}
		return fin.TraceDigest, nil
	}
	before, err := scrapeMetrics(base + "/v1/metrics")
	if err != nil {
		return fmt.Errorf("metrics before advance: %w", err)
	}
	digests := map[string]string{}
	advDone := make(chan error, 1)
	go func() {
		d, err := finish(st.ID)
		digests[st.ID] = d
		advDone <- err
	}()
	during, err := scrapeMetrics(base + "/v1/metrics")
	if err != nil {
		return fmt.Errorf("metrics mid-advance: %w", err)
	}
	if err := <-advDone; err != nil {
		return err
	}
	after, err := scrapeMetrics(base + "/v1/metrics")
	if err != nil {
		return fmt.Errorf("metrics after advance: %w", err)
	}
	if err := checkMetrics(before, during, after); err != nil {
		return fmt.Errorf("metrics gate: %w", err)
	}
	fmt.Printf("smoke: metrics gate PASS — %d series mid-advance, counters monotone t+%v\n",
		len(during), time.Since(start).Round(time.Millisecond))
	if digests[sibling.ID], err = finish(sibling.ID); err != nil {
		return err
	}
	if digests[st.ID] != digests[sibling.ID] {
		return fmt.Errorf("fork diverged: %s got %s, %s got %s", st.ID, digests[st.ID], sibling.ID, digests[sibling.ID])
	}

	// 6. The standalone arm: the same history performed on a raw Run
	// in-process — cold build, run to the fork point, inject, finish.
	// The service must add nothing to and lose nothing from what the
	// identical API calls on a bare scenario.Run produce.
	spec, err := cliconfig.SpecRequest{Scenario: scen}.Resolve()
	if err != nil {
		return err
	}
	f, err := fault.Fault()
	if err != nil {
		return err
	}
	arm, err := scenario.New(spec)
	if err != nil {
		return fmt.Errorf("standalone arm: %w", err)
	}
	defer arm.Cloud.Close()
	if err := arm.RunTo(forkAt); err != nil {
		return fmt.Errorf("standalone arm: %w", err)
	}
	if err := arm.Inject(f); err != nil {
		return fmt.Errorf("standalone arm: %w", err)
	}
	rep, err := arm.Execute()
	if err != nil {
		return fmt.Errorf("standalone arm: %w", err)
	}
	if got := rep.TraceDigest(); got != digests[st.ID] {
		return fmt.Errorf("service trace digest %s != standalone %s", digests[st.ID], got)
	}

	if n := <-sseEvents; n < 1 {
		return fmt.Errorf("SSE feed delivered no events")
	}
	if left() < 0 {
		return fmt.Errorf("wall budget exceeded: %v over %v", time.Since(start), budget)
	}
	fmt.Printf("smoke: PASS — both forks and the standalone run share digest %s… in %v (budget %v)\n",
		digests[st.ID][:16], time.Since(start).Round(time.Millisecond), budget)
	return nil
}

// smokeCoreSeries is the series set a healthy mid-advance scrape must
// expose — service, session, scheduler, network, SDN and power layers
// all reporting. Names match by prefix so labelled series qualify.
var smokeCoreSeries = []string{
	"pisim_sessions",
	"pisim_images",
	"pisim_fleet_plan_cache_hits_total",
	"pisim_fleet_plans_cached",
	"pisim_manager_sessions_created",
	"pisim_manager_images_created",
	"pisim_session_offset_ns",
	"pisim_session_journal_lag_ns",
	"pisim_session_subscribers",
	"pisim_session_mailbox_depth",
	"pisim_session_advances_total",
	"pisim_session_events_total",
	"pisim_session_advance_slice_seconds_count",
	"pisim_kernel_virtual_time_seconds",
	"pisim_sched_events_scheduled_total",
	"pisim_sched_events_fired_total",
	"pisim_sched_events_pending",
	"pisim_net_flushes_total",
	"pisim_net_flows_committed_total",
	"pisim_net_active_flows",
	"pisim_sdn_packet_ins_total",
	"pisim_sdn_route_cache_hits_total",
	"pisim_power_watts",
}

// smokeMonotone are the counters whose summed value must never step
// back across the before/during/after scrapes.
var smokeMonotone = []string{
	"pisim_sched_events_fired_total",
	"pisim_net_flushes_total",
	"pisim_net_flows_committed_total",
	"pisim_session_advances_total",
	"pisim_sdn_packet_ins_total",
}

// scrapeMetrics GETs a Prometheus text exposition and returns series
// (name plus rendered label set) → value.
func scrapeMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return nil, fmt.Errorf("GET %s: content-type %q", url, ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("bad sample line %q: %w", line, err)
		}
		out[line[:i]] = v
	}
	return out, sc.Err()
}

// seriesSum adds every series whose name starts with prefix (bare or
// labelled).
func seriesSum(m map[string]float64, prefix string) float64 {
	var sum float64
	for k, v := range m {
		if k == prefix || strings.HasPrefix(k, prefix+"{") {
			sum += v
		}
	}
	return sum
}

// checkMetrics enforces the metrics gate over the three scrapes.
func checkMetrics(before, during, after map[string]float64) error {
	if len(during) < 20 {
		return fmt.Errorf("mid-advance scrape has %d series, want ≥20", len(during))
	}
	for _, name := range smokeCoreSeries {
		found := false
		for k := range during {
			if k == name || strings.HasPrefix(k, name+"{") {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("core series %s missing from mid-advance scrape", name)
		}
	}
	for _, name := range smokeMonotone {
		b, d, a := seriesSum(before, name), seriesSum(during, name), seriesSum(after, name)
		if b > d || d > a {
			return fmt.Errorf("counter %s not monotone: %v → %v → %v", name, b, d, a)
		}
	}
	return nil
}

// countSSE reads the session event stream for up to window and returns
// how many SSE events arrived.
func countSSE(url string, window time.Duration) int {
	client := &http.Client{Timeout: window}
	resp, err := client.Get(url)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	n := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: ") {
			n++
		}
	}
	return n
}
