// Command pibench regenerates every table, figure and claim of the paper
// plus the Section III research-direction experiments, printing the rows
// EXPERIMENTS.md records.
//
// Usage:
//
//	pibench -list           # show experiment ids
//	pibench -exp t1         # run one experiment
//	pibench -exp all        # run everything (default)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	exp := flag.String("exp", "all", "experiment id to run, or 'all'")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "pibench:", err)
		os.Exit(1)
	}
}

func run(exp string) error {
	if exp == "all" {
		results, err := experiments.All()
		for _, r := range results {
			fmt.Println(r.Table)
		}
		return err
	}
	r, err := experiments.ByID(exp)
	if err != nil {
		return err
	}
	fmt.Println(r.Table)
	return nil
}
