package main

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
)

// withCloud serves a small cloud's pimaster and returns its URL.
func withCloud(t *testing.T) (string, *core.Cloud) {
	t.Helper()
	cloud, err := core.New(core.Config{Racks: 2, HostsPerRack: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cloud.Close)
	return cloud.ServeMaster(), cloud
}

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	r.Close()
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput: %s", ferr, buf[:n])
	}
	return string(buf[:n])
}

func TestNodesCommand(t *testing.T) {
	master, _ := withCloud(t)
	out := capture(t, func() error { return run(master, "nodes", nil) })
	if !strings.Contains(out, "pi-r00-n00") || !strings.Contains(out, "NODE") {
		t.Fatalf("nodes output:\n%s", out)
	}
}

func TestSpawnListMigrateDestroy(t *testing.T) {
	master, cloud := withCloud(t)
	// Spawn.
	out := capture(t, func() error {
		return run(master, "spawn", []string{"-name", "ctlvm", "-image", "webserver"})
	})
	if !strings.Contains(out, "ctlvm") {
		t.Fatalf("spawn output:\n%s", out)
	}
	if err := cloud.Settle(); err != nil {
		t.Fatal(err)
	}
	// List.
	out = capture(t, func() error { return run(master, "vms", nil) })
	if !strings.Contains(out, "ctlvm") {
		t.Fatalf("vms output:\n%s", out)
	}
	// Migrate to a node in the other rack.
	rec, err := cloud.Master.VM("ctlvm")
	if err != nil {
		t.Fatal(err)
	}
	src, _ := cloud.NodeByName(rec.Node)
	var target string
	for _, n := range cloud.Nodes() {
		if n.Rack != src.Rack {
			target = n.Name
			break
		}
	}
	out = capture(t, func() error {
		return run(master, "migrate", []string{"-name", "ctlvm", "-to", target})
	})
	if !strings.Contains(out, "migrating") {
		t.Fatalf("migrate output:\n%s", out)
	}
	if err := cloud.Settle(); err != nil {
		t.Fatal(err)
	}
	after, err := cloud.Master.VM("ctlvm")
	if err != nil {
		t.Fatal(err)
	}
	if after.Node != target {
		t.Fatalf("vm on %s after migrate, want %s", after.Node, target)
	}
	// Destroy.
	out = capture(t, func() error {
		return run(master, "destroy", []string{"-name", "ctlvm"})
	})
	if !strings.Contains(out, "destroyed") {
		t.Fatalf("destroy output:\n%s", out)
	}
}

func TestPowerLeasesImages(t *testing.T) {
	master, _ := withCloud(t)
	for _, cmd := range []string{"power", "leases", "images"} {
		out := capture(t, func() error { return run(master, cmd, nil) })
		if len(strings.TrimSpace(out)) == 0 {
			t.Fatalf("%s printed nothing", cmd)
		}
	}
}

func TestErrors(t *testing.T) {
	master, _ := withCloud(t)
	if err := run(master, "spawn", []string{"-image", "webserver"}); err == nil {
		t.Fatal("spawn without -name accepted")
	}
	if err := run(master, "destroy", nil); err == nil {
		t.Fatal("destroy without -name accepted")
	}
	if err := run(master, "migrate", []string{"-name", "x"}); err == nil {
		t.Fatal("migrate without -to accepted")
	}
	if err := run(master, "frobnicate", nil); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run(master, "destroy", []string{"-name", "ghost"}); err == nil {
		t.Fatal("destroying a missing VM should fail")
	}
}
