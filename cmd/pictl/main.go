// Command pictl is the operator CLI for a running PiCloud: it drives
// pimaster's REST API the way the paper's administrators use the web
// control panel.
//
// Usage:
//
//	pictl [-master URL] nodes
//	pictl [-master URL] vms
//	pictl [-master URL] spawn -name web1 -image webserver [-placer best-fit]
//	pictl [-master URL] destroy -name web1
//	pictl [-master URL] migrate -name web1 -to pi-r01-n00 [-routing label]
//	pictl [-master URL] power
//	pictl [-master URL] leases
//	pictl [-master URL] images
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"text/tabwriter"
)

func main() {
	master := flag.String("master", "http://localhost:8080", "pimaster base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if err := run(*master, args[0], args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pictl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pictl [-master URL] nodes|vms|spawn|destroy|migrate|power|leases|images [args]")
}

func run(master, cmd string, rest []string) error {
	switch cmd {
	case "nodes":
		return nodes(master)
	case "vms":
		return vms(master)
	case "spawn":
		return spawn(master, rest)
	case "destroy":
		return destroy(master, rest)
	case "migrate":
		return migrate(master, rest)
	case "power":
		return getJSON(master + "/api/v1/power")
	case "leases":
		return getJSON(master + "/api/v1/leases")
	case "images":
		return getJSON(master + "/api/v1/images")
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// fetch GETs and decodes JSON into out.
func fetch(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
		return fmt.Errorf("%s: %s", resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getJSON(url string) error {
	var v any
	if err := fetch(url, &v); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func nodes(master string) error {
	var sts []struct {
		Node       string  `json:"node"`
		CPUUtil    float64 `json:"cpu_util"`
		MemUsed    int64   `json:"mem_used_bytes"`
		MemTotal   int64   `json:"mem_total_bytes"`
		Running    int     `json:"running"`
		Containers int     `json:"containers"`
		PowerWatts float64 `json:"power_watts"`
		PoweredOn  bool    `json:"powered_on"`
	}
	if err := fetch(master+"/api/v1/nodes", &sts); err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "NODE\tCPU\tMEM\tCTRS\tPOWER\tSTATE")
	for _, st := range sts {
		state := "up"
		if !st.PoweredOn {
			state = "off"
		}
		fmt.Fprintf(w, "%s\t%.0f%%\t%d/%dMiB\t%d/%d\t%.1fW\t%s\n",
			st.Node, st.CPUUtil*100, st.MemUsed>>20, st.MemTotal>>20,
			st.Running, st.Containers, st.PowerWatts, state)
	}
	return w.Flush()
}

func vms(master string) error {
	var recs []struct {
		Name  string `json:"name"`
		Node  string `json:"node"`
		Image string `json:"image"`
		IP    string `json:"ip"`
		FQDN  string `json:"fqdn"`
	}
	if err := fetch(master+"/api/v1/vms", &recs); err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "NAME\tNODE\tIMAGE\tIP\tFQDN")
	for _, r := range recs {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", r.Name, r.Node, r.Image, r.IP, r.FQDN)
	}
	return w.Flush()
}

// post sends a JSON body and prints the JSON reply.
func post(url string, body any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s: %s", resp.Status, out)
	}
	fmt.Printf("%s\n", out)
	return nil
}

func spawn(master string, args []string) error {
	fs := flag.NewFlagSet("spawn", flag.ContinueOnError)
	name := fs.String("name", "", "vm name")
	img := fs.String("image", "webserver", "image reference")
	placer := fs.String("placer", "", "placement algorithm override")
	mem := fs.Int64("mem", 0, "memory limit bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("spawn: -name is required")
	}
	return post(master+"/api/v1/vms", map[string]any{
		"name": *name, "image": *img, "placer": *placer, "mem_limit_bytes": *mem,
	})
}

func destroy(master string, args []string) error {
	fs := flag.NewFlagSet("destroy", flag.ContinueOnError)
	name := fs.String("name", "", "vm name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("destroy: -name is required")
	}
	req, err := http.NewRequest(http.MethodDelete, master+"/api/v1/vms/"+*name, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
		return fmt.Errorf("%s: %s", resp.Status, body)
	}
	fmt.Println("destroyed", *name)
	return nil
}

func migrate(master string, args []string) error {
	fs := flag.NewFlagSet("migrate", flag.ContinueOnError)
	name := fs.String("name", "", "vm name")
	to := fs.String("to", "", "target node")
	routing := fs.String("routing", "label", "label (IP-less) or ip")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *to == "" {
		return fmt.Errorf("migrate: -name and -to are required")
	}
	return post(master+"/api/v1/vms/"+*name+"/migrate", map[string]string{
		"target_node": *to, "routing": *routing,
	})
}
