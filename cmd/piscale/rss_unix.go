//go:build linux

package main

import "syscall"

// maxRSSBytes returns the process's peak resident set size in bytes.
// Linux reports ru_maxrss in KiB. Peak RSS is monotone over the
// process lifetime, so within one bench trajectory each row records
// the high-water mark up to and including that arm.
func maxRSSBytes() uint64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return uint64(ru.Maxrss) * 1024
}
