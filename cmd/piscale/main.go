// Command piscale runs canned or customised scenarios headless, as fast
// as the hardware allows: it builds the scenario's cloud, replays the
// whole fault-and-traffic timeline in virtual time, and prints the
// report. It is the scale-out workhorse behind the CI bench-smoke job and
// the quickest way to watch a 1000-node fleet survive a migration storm.
//
// Usage:
//
//	piscale -list
//	piscale -scenario migration-storm
//	piscale -scenario megafleet-1000 -trace 20
//	piscale -scenario megafleet-1000000 -serial-solve -eager-advance
//	piscale -scenario diurnal-day -racks 10 -hosts-per-rack 30 -duration 20m
//	piscale -bench-json BENCH_PR4.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/scenario"
)

func main() {
	list := flag.Bool("list", false, "list canned scenarios and exit")
	name := flag.String("scenario", "", "canned scenario to run (see -list)")
	seed := flag.Int64("seed", -1, "override the scenario's RNG seed")
	duration := flag.Duration("duration", 0, "override the simulated duration")
	racks := flag.Int("racks", 0, "override the rack count")
	hostsPerRack := flag.Int("hosts-per-rack", 0, "override Pis per rack")
	sample := flag.Duration("sample", 0, "override the metrics sampling cadence")
	traceTail := flag.Int("trace", 0, "print the last N trace events")
	quiet := flag.Bool("q", false, "suppress live event streaming")
	benchJSON := flag.String("bench-json", "", "run every canned scenario once and write the benchmark trajectory to FILE")
	// Run-phase kernel knobs, mirroring the fleet builder's serial-build
	// escape hatch: both modes are byte-identical to the defaults (the
	// determinism gates prove it); these exist for ablation and
	// benchmarking.
	solveWorkers := flag.Int("solve-workers", 0, "parallel domain-solve pool size (0 = auto with work threshold; >0 forces fan-out)")
	serialSolve := flag.Bool("serial-solve", false, "solve dirty congestion domains serially on the engine goroutine")
	eagerAdvance := flag.Bool("eager-advance", false, "restore the whole-fleet flow accounting sweep at every instant (seed kernel cost model)")
	flag.Parse()

	if *list {
		fmt.Print("canned scenarios:\n" + scenario.Describe())
		return
	}
	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "piscale:", err)
			os.Exit(1)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "piscale: -scenario is required (or -list / -bench-json)")
		os.Exit(2)
	}
	opts := runOpts{
		seed: *seed, duration: *duration,
		racks: *racks, hostsPerRack: *hostsPerRack,
		sample: *sample, traceTail: *traceTail, quiet: *quiet,
		solveWorkers: *solveWorkers, serialSolve: *serialSolve, eagerAdvance: *eagerAdvance,
	}
	if err := run(*name, opts); err != nil {
		fmt.Fprintln(os.Stderr, "piscale:", err)
		os.Exit(1)
	}
}

// runOpts carries the command-line overrides into a scenario run.
type runOpts struct {
	seed                int64
	duration            time.Duration
	racks, hostsPerRack int
	sample              time.Duration
	traceTail           int
	quiet               bool
	solveWorkers        int
	serialSolve         bool
	eagerAdvance        bool
}

// benchEntry is one scenario's row of the benchmark trajectory.
type benchEntry struct {
	Name        string  `json:"name"`
	Nodes       int     `json:"nodes"`
	Racks       int     `json:"racks,omitempty"`
	SimSeconds  float64 `json:"sim_s,omitempty"`
	WallSeconds float64 `json:"wall_s,omitempty"`
	// BuildSeconds is the fleet-construction wall time (cloud assembly
	// plus fleet spawn) — the series the PR 3 fleet builder moves.
	BuildSeconds float64 `json:"build_s,omitempty"`
	NsPerOp      int64   `json:"ns_per_op"`
	Events       uint64  `json:"events,omitempty"`
	EventsPerS   float64 `json:"events_per_s"`
	SimPerWall   float64 `json:"sim_s_per_wall_s"`
	TraceDigest  string  `json:"trace_digest,omitempty"`
}

// pr1Baseline records the PR 1 numbers for the scenarios that existed
// then. Keeping earlier baselines in the emitted JSON makes every
// BENCH_PR<N>.json self-contained: the improvement claim travels with
// the data.
var pr1Baseline = map[string]benchEntry{
	"megafleet-1000": {Name: "megafleet-1000", Nodes: 1040, NsPerOp: 2714070664, EventsPerS: 3204, SimPerWall: 71.42},
	"flash-crowd":    {Name: "flash-crowd", Nodes: 200, NsPerOp: 713221764, EventsPerS: 18173, SimPerWall: 426.7},
}

// pr2Baseline is BENCH_PR2.json's recorded trajectory. Note ns_per_op
// there is the run phase only — PR 2 measured wall time inside Execute,
// after construction — so it is comparable to this file's ns_per_op but
// NOT to build_s: no construction series existed before PR 3. Before
// the fleet builder, megafleet construction ran one node at a time
// through Sscanf parsing, eager per-node HTTP muxes and JSON status
// polling per placement (~10.4 s for megafleet-10000 on the PR 3
// reference machine, vs the build_s this file records).
var pr2Baseline = map[string]benchEntry{
	"brownout-fabric": {Name: "brownout-fabric", Nodes: 56, NsPerOp: 26216472, EventsPerS: 238590, SimPerWall: 11443.2},
	"diurnal-day":     {Name: "diurnal-day", Nodes: 56, NsPerOp: 9344399, EventsPerS: 271821, SimPerWall: 64209.6},
	"flash-crowd":     {Name: "flash-crowd", Nodes: 200, NsPerOp: 111724842, EventsPerS: 114361, SimPerWall: 2685.2},
	"megafleet-1000":  {Name: "megafleet-1000", Nodes: 1040, NsPerOp: 68087063, EventsPerS: 79061, SimPerWall: 1762.4},
	"megafleet-10000": {Name: "megafleet-10000", Nodes: 10000, NsPerOp: 345515660, EventsPerS: 14856, SimPerWall: 173.7},
	"migration-storm": {Name: "migration-storm", Nodes: 56, NsPerOp: 5631652, EventsPerS: 166736, SimPerWall: 53270.3},
	"node-churn":      {Name: "node-churn", Nodes: 56, NsPerOp: 5666202, EventsPerS: 415622, SimPerWall: 52945.5},
	"rack-blackout":   {Name: "rack-blackout", Nodes: 56, NsPerOp: 8412538, EventsPerS: 337354, SimPerWall: 35661.1},
}

// pr3Baseline is BENCH_PR3.json's recorded trajectory: the parallel
// fleet builder's numbers, before the PR 4 run-phase kernel (lazy flow
// accounting, parallel domain solving, hierarchical telemetry,
// structured route synthesis). ns_per_op and events_per_s measure the
// run phase; build_s the construction phase.
var pr3Baseline = map[string]benchEntry{
	"brownout-fabric":  {Name: "brownout-fabric", Nodes: 56, NsPerOp: 20582778, BuildSeconds: 0.0013, EventsPerS: 303895, SimPerWall: 14575.3},
	"diurnal-day":      {Name: "diurnal-day", Nodes: 56, NsPerOp: 7797693, BuildSeconds: 0.0015, EventsPerS: 325737, SimPerWall: 76945.8},
	"flash-crowd":      {Name: "flash-crowd", Nodes: 200, NsPerOp: 106647457, BuildSeconds: 0.0015, EventsPerS: 119806, SimPerWall: 2813.0},
	"megafleet-1000":   {Name: "megafleet-1000", Nodes: 1040, NsPerOp: 57730180, BuildSeconds: 0.0148, EventsPerS: 93244, SimPerWall: 2078.6},
	"megafleet-10000":  {Name: "megafleet-10000", Nodes: 10000, NsPerOp: 328762373, BuildSeconds: 0.1450, EventsPerS: 15613, SimPerWall: 182.5},
	"megafleet-100000": {Name: "megafleet-100000", Nodes: 100000, NsPerOp: 2132795391, BuildSeconds: 2.1306, EventsPerS: 746, SimPerWall: 14.1},
	"migration-storm":  {Name: "migration-storm", Nodes: 56, NsPerOp: 3535367, BuildSeconds: 0.0017, EventsPerS: 265602, SimPerWall: 84856.8},
	"node-churn":       {Name: "node-churn", Nodes: 56, NsPerOp: 5029564, BuildSeconds: 0.0011, EventsPerS: 468231, SimPerWall: 59647.3},
	"rack-blackout":    {Name: "rack-blackout", Nodes: 56, NsPerOp: 6347473, BuildSeconds: 0.0012, EventsPerS: 447107, SimPerWall: 47262.9},
}

// runBenchJSON executes every canned scenario once and writes the
// per-scenario throughput trajectory (plus the PR 1–PR 3 baselines)
// to path.
func runBenchJSON(path string) error {
	type trajectory struct {
		GeneratedBy string                `json:"generated_by"`
		GoVersion   string                `json:"go_version"`
		GoosGoarch  string                `json:"goos_goarch"`
		BaselinePR1 map[string]benchEntry `json:"baseline_pr1"`
		BaselinePR2 map[string]benchEntry `json:"baseline_pr2"`
		BaselinePR3 map[string]benchEntry `json:"baseline_pr3"`
		Scenarios   []benchEntry          `json:"scenarios"`
	}
	out := trajectory{
		GeneratedBy: "piscale -bench-json",
		GoVersion:   runtime.Version(),
		GoosGoarch:  runtime.GOOS + "/" + runtime.GOARCH,
		BaselinePR1: pr1Baseline,
		BaselinePR2: pr2Baseline,
		BaselinePR3: pr3Baseline,
	}
	for _, n := range scenario.Names() {
		spec, err := scenario.Catalog(n)
		if err != nil {
			return err
		}
		rep, err := scenario.Execute(spec)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", n, err)
		}
		wall := rep.WallTime.Seconds()
		out.Scenarios = append(out.Scenarios, benchEntry{
			Name:         rep.Name,
			Nodes:        rep.Nodes,
			Racks:        rep.Racks,
			SimSeconds:   rep.SimTime.Seconds(),
			WallSeconds:  wall,
			BuildSeconds: rep.BuildWallTime.Seconds(),
			NsPerOp:      rep.WallTime.Nanoseconds(),
			Events:       rep.EventsFired,
			EventsPerS:   float64(rep.EventsFired) / wall,
			SimPerWall:   rep.SimTime.Seconds() / wall,
			TraceDigest:  rep.TraceDigest(),
		})
		fmt.Printf("%-18s %7d nodes  built %6.2fs  %8.0f events/s  %9.1f sim-s/wall-s\n",
			rep.Name, rep.Nodes, rep.BuildWallTime.Seconds(),
			float64(rep.EventsFired)/wall, rep.SimTime.Seconds()/wall)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d scenarios)\n", path, len(out.Scenarios))
	return nil
}

// kernelModeLine renders the run header's solver/advance summary.
func kernelModeLine(o runOpts) string {
	solver := "parallel(auto)"
	switch {
	case o.serialSolve:
		solver = "serial"
	case o.solveWorkers > 0:
		solver = fmt.Sprintf("parallel(%d workers, forced)", o.solveWorkers)
	}
	advance := "lazy"
	if o.eagerAdvance {
		advance = "eager"
	}
	return fmt.Sprintf("run-phase kernel: solver=%s advance=%s", solver, advance)
}

func run(name string, o runOpts) error {
	spec, err := scenario.Catalog(name)
	if err != nil {
		return err
	}
	if o.seed >= 0 {
		spec.Cloud.Seed = o.seed
	}
	if o.duration > 0 {
		spec.Duration = o.duration
	}
	if o.racks > 0 {
		spec.Cloud.Racks = o.racks
	}
	if o.hostsPerRack > 0 {
		spec.Cloud.HostsPerRack = o.hostsPerRack
	}
	if o.sample > 0 {
		spec.SampleEvery = o.sample
	}
	spec.Cloud.SolveWorkers = o.solveWorkers
	spec.Cloud.SerialSolve = o.serialSolve
	spec.Cloud.EagerAdvance = o.eagerAdvance

	fmt.Printf("scenario %s: %d nodes, %v simulated\n%s\n",
		spec.Name, scenario.NodeCount(spec), spec.Duration, kernelModeLine(o))

	r, err := scenario.New(spec)
	if err != nil {
		return err
	}
	defer r.Cloud.Close()
	if !o.quiet {
		r.OnEvent = func(ev scenario.TraceEvent) { fmt.Println(ev) }
	}
	rep, err := r.Execute()
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	if o.traceTail > 0 {
		tail := rep.Trace
		if len(tail) > o.traceTail {
			tail = tail[len(tail)-o.traceTail:]
		}
		fmt.Printf("last %d trace events:\n", len(tail))
		for _, ev := range tail {
			fmt.Println(" ", ev)
		}
	}
	return nil
}
