// Command piscale runs canned or customised scenarios headless, as fast
// as the hardware allows: it builds the scenario's cloud, replays the
// whole fault-and-traffic timeline in virtual time, and prints the
// report. It is the scale-out workhorse behind the CI bench-smoke job and
// the quickest way to watch a 1000-node fleet survive a migration storm.
//
// Usage:
//
//	piscale -list
//	piscale -scenario migration-storm
//	piscale -scenario megafleet-1000 -trace 20
//	piscale -scenario diurnal-day -racks 10 -hosts-per-rack 30 -duration 20m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/scenario"
)

func main() {
	list := flag.Bool("list", false, "list canned scenarios and exit")
	name := flag.String("scenario", "", "canned scenario to run (see -list)")
	seed := flag.Int64("seed", -1, "override the scenario's RNG seed")
	duration := flag.Duration("duration", 0, "override the simulated duration")
	racks := flag.Int("racks", 0, "override the rack count")
	hostsPerRack := flag.Int("hosts-per-rack", 0, "override Pis per rack")
	sample := flag.Duration("sample", 0, "override the metrics sampling cadence")
	traceTail := flag.Int("trace", 0, "print the last N trace events")
	quiet := flag.Bool("q", false, "suppress live event streaming")
	flag.Parse()

	if *list {
		fmt.Print("canned scenarios:\n" + scenario.Describe())
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "piscale: -scenario is required (or -list)")
		os.Exit(2)
	}
	if err := run(*name, *seed, *duration, *racks, *hostsPerRack, *sample, *traceTail, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "piscale:", err)
		os.Exit(1)
	}
}

func run(name string, seed int64, duration time.Duration, racks, hostsPerRack int, sample time.Duration, traceTail int, quiet bool) error {
	spec, err := scenario.Catalog(name)
	if err != nil {
		return err
	}
	if seed >= 0 {
		spec.Cloud.Seed = seed
	}
	if duration > 0 {
		spec.Duration = duration
	}
	if racks > 0 {
		spec.Cloud.Racks = racks
	}
	if hostsPerRack > 0 {
		spec.Cloud.HostsPerRack = hostsPerRack
	}
	if sample > 0 {
		spec.SampleEvery = sample
	}

	r, err := scenario.New(spec)
	if err != nil {
		return err
	}
	defer r.Cloud.Close()
	if !quiet {
		r.OnEvent = func(ev scenario.TraceEvent) { fmt.Println(ev) }
	}
	rep, err := r.Execute()
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	if traceTail > 0 {
		tail := rep.Trace
		if len(tail) > traceTail {
			tail = tail[len(tail)-traceTail:]
		}
		fmt.Printf("last %d trace events:\n", len(tail))
		for _, ev := range tail {
			fmt.Println(" ", ev)
		}
	}
	return nil
}
