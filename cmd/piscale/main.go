// Command piscale runs canned or customised scenarios headless, as fast
// as the hardware allows: it builds the scenario's cloud, replays the
// whole fault-and-traffic timeline in virtual time, and prints the
// report. It is the scale-out workhorse behind the CI bench-smoke job and
// the quickest way to watch a 1000-node fleet survive a migration storm.
//
// Usage:
//
//	piscale -list
//	piscale -scenario migration-storm
//	piscale -scenario megafleet-1000 -trace 20
//	piscale -scenario diurnal-day -racks 10 -hosts-per-rack 30 -duration 20m
//	piscale -bench-json BENCH_PR2.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/scenario"
)

func main() {
	list := flag.Bool("list", false, "list canned scenarios and exit")
	name := flag.String("scenario", "", "canned scenario to run (see -list)")
	seed := flag.Int64("seed", -1, "override the scenario's RNG seed")
	duration := flag.Duration("duration", 0, "override the simulated duration")
	racks := flag.Int("racks", 0, "override the rack count")
	hostsPerRack := flag.Int("hosts-per-rack", 0, "override Pis per rack")
	sample := flag.Duration("sample", 0, "override the metrics sampling cadence")
	traceTail := flag.Int("trace", 0, "print the last N trace events")
	quiet := flag.Bool("q", false, "suppress live event streaming")
	benchJSON := flag.String("bench-json", "", "run every canned scenario once and write the benchmark trajectory to FILE")
	flag.Parse()

	if *list {
		fmt.Print("canned scenarios:\n" + scenario.Describe())
		return
	}
	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "piscale:", err)
			os.Exit(1)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "piscale: -scenario is required (or -list / -bench-json)")
		os.Exit(2)
	}
	if err := run(*name, *seed, *duration, *racks, *hostsPerRack, *sample, *traceTail, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "piscale:", err)
		os.Exit(1)
	}
}

// benchEntry is one scenario's row of the benchmark trajectory.
type benchEntry struct {
	Name        string  `json:"name"`
	Nodes       int     `json:"nodes"`
	Racks       int     `json:"racks,omitempty"`
	SimSeconds  float64 `json:"sim_s,omitempty"`
	WallSeconds float64 `json:"wall_s,omitempty"`
	NsPerOp     int64   `json:"ns_per_op"`
	Events      uint64  `json:"events,omitempty"`
	EventsPerS  float64 `json:"events_per_s"`
	SimPerWall  float64 `json:"sim_s_per_wall_s"`
	TraceDigest string  `json:"trace_digest,omitempty"`
}

// pr1Baseline records the PR 1 numbers for the scenarios that existed
// then, measured on the same class of machine the trajectory files are
// generated on (Intel Xeon @ 2.10GHz, linux/amd64, -benchtime=1x).
// Keeping them in the emitted JSON makes every BENCH_PR<N>.json
// self-contained: the improvement claim travels with the data.
var pr1Baseline = map[string]benchEntry{
	"megafleet-1000": {Name: "megafleet-1000", Nodes: 1040, NsPerOp: 2714070664, EventsPerS: 3204, SimPerWall: 71.42},
	"flash-crowd":    {Name: "flash-crowd", Nodes: 200, NsPerOp: 713221764, EventsPerS: 18173, SimPerWall: 426.7},
}

// runBenchJSON executes every canned scenario once and writes the
// per-scenario throughput trajectory (plus the PR 1 baseline) to path.
func runBenchJSON(path string) error {
	type trajectory struct {
		GeneratedBy string                `json:"generated_by"`
		GoVersion   string                `json:"go_version"`
		GoosGoarch  string                `json:"goos_goarch"`
		BaselinePR1 map[string]benchEntry `json:"baseline_pr1"`
		Scenarios   []benchEntry          `json:"scenarios"`
	}
	out := trajectory{
		GeneratedBy: "piscale -bench-json",
		GoVersion:   runtime.Version(),
		GoosGoarch:  runtime.GOOS + "/" + runtime.GOARCH,
		BaselinePR1: pr1Baseline,
	}
	for _, n := range scenario.Names() {
		spec, err := scenario.Catalog(n)
		if err != nil {
			return err
		}
		rep, err := scenario.Execute(spec)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", n, err)
		}
		wall := rep.WallTime.Seconds()
		out.Scenarios = append(out.Scenarios, benchEntry{
			Name:        rep.Name,
			Nodes:       rep.Nodes,
			Racks:       rep.Racks,
			SimSeconds:  rep.SimTime.Seconds(),
			WallSeconds: wall,
			NsPerOp:     rep.WallTime.Nanoseconds(),
			Events:      rep.EventsFired,
			EventsPerS:  float64(rep.EventsFired) / wall,
			SimPerWall:  rep.SimTime.Seconds() / wall,
			TraceDigest: rep.TraceDigest(),
		})
		fmt.Printf("%-18s %6d nodes  %8.0f events/s  %9.1f sim-s/wall-s\n",
			rep.Name, rep.Nodes, float64(rep.EventsFired)/wall, rep.SimTime.Seconds()/wall)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d scenarios)\n", path, len(out.Scenarios))
	return nil
}

func run(name string, seed int64, duration time.Duration, racks, hostsPerRack int, sample time.Duration, traceTail int, quiet bool) error {
	spec, err := scenario.Catalog(name)
	if err != nil {
		return err
	}
	if seed >= 0 {
		spec.Cloud.Seed = seed
	}
	if duration > 0 {
		spec.Duration = duration
	}
	if racks > 0 {
		spec.Cloud.Racks = racks
	}
	if hostsPerRack > 0 {
		spec.Cloud.HostsPerRack = hostsPerRack
	}
	if sample > 0 {
		spec.SampleEvery = sample
	}

	r, err := scenario.New(spec)
	if err != nil {
		return err
	}
	defer r.Cloud.Close()
	if !quiet {
		r.OnEvent = func(ev scenario.TraceEvent) { fmt.Println(ev) }
	}
	rep, err := r.Execute()
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	if traceTail > 0 {
		tail := rep.Trace
		if len(tail) > traceTail {
			tail = tail[len(tail)-traceTail:]
		}
		fmt.Printf("last %d trace events:\n", len(tail))
		for _, ev := range tail {
			fmt.Println(" ", ev)
		}
	}
	return nil
}
