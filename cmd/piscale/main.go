// Command piscale runs canned or customised scenarios headless, as fast
// as the hardware allows: it builds the scenario's cloud, replays the
// whole fault-and-traffic timeline in virtual time, and prints the
// report. It is the scale-out workhorse behind the CI bench-smoke job and
// the quickest way to watch a 1000-node fleet survive a migration storm.
//
// Usage:
//
//	piscale -list
//	piscale -scenario migration-storm
//	piscale -scenario megafleet-1000 -trace 20
//	piscale -scenario megafleet-1000 -trace-out run.trace.json -metrics-dump
//	piscale -scenario megafleet-1000000 -serial-solve -eager-advance -classic-heap
//	piscale -scenario diurnal-day -racks 10 -hosts-per-rack 30 -duration 20m
//	piscale -scenario rack-blackout -checkpoint-at 45s
//	piscale -resume-from rack-blackout.ckpt.json
//	piscale -study bisect-blackout
//	piscale -scenario megafleet-100000 -sharded-advance -shard-workers 4
//	piscale -scenario megafleet-fattree-100000 -no-route-synth
//	piscale -bench-json BENCH_PR10.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cliconfig"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
)

func main() {
	list := flag.Bool("list", false, "list canned scenarios and studies, then exit")
	name := flag.String("scenario", "", "canned scenario to run (see -list)")
	study := flag.String("study", "", "canned checkpoint study to run (see -list)")
	traceTail := flag.Int("trace", 0, "print the last N trace events")
	quiet := flag.Bool("q", false, "suppress live event streaming")
	benchJSON := flag.String("bench-json", "", "run every canned scenario once and write the benchmark trajectory to FILE")
	traceOut := flag.String("trace-out", "", "write the run's kernel spans as Chrome trace-event JSON to FILE (Perfetto-loadable)")
	metricsDump := flag.Bool("metrics-dump", false, "print the final kernel metrics in Prometheus text format after the run")
	// The shared surface — fleet shape, fabric, sampling and the run-phase
	// kernel knobs (all modes byte-identical to the defaults; the
	// determinism gates prove it) — registers through cliconfig, so
	// piscale, picloud and piscaled parse identically.
	common := cliconfig.Common{Seed: -1}
	common.Register(flag.CommandLine)
	// Checkpointing: pause the run at an instant, record the cross-layer
	// kernel fingerprint to a file, continue; a later -resume-from run
	// replays to that instant and proves byte-identity before carrying on.
	checkpointAt := flag.Duration("checkpoint-at", 0, "pause the scenario at this offset and write a checkpoint file before continuing")
	checkpointFile := flag.String("checkpoint-file", "", "checkpoint file path (default <scenario>.ckpt.json)")
	resumeFrom := flag.String("resume-from", "", "resume a scenario from a checkpoint file, verifying the kernel fingerprint at the capture instant")
	flag.Parse()

	if *list {
		fmt.Print("canned scenarios:\n" + scenario.Describe())
		fmt.Print("checkpoint studies:\n" + scenario.DescribeStudies())
		return
	}
	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "piscale:", err)
			os.Exit(1)
		}
		return
	}
	if *study != "" {
		rep, err := scenario.RunStudy(*study)
		if err != nil {
			fmt.Fprintln(os.Stderr, "piscale:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Table())
		return
	}
	opts := runOpts{
		common:    common,
		traceTail: *traceTail, quiet: *quiet,
		checkpointAt: *checkpointAt, checkpointFile: *checkpointFile,
		traceOut: *traceOut, metricsDump: *metricsDump,
	}
	if *resumeFrom != "" {
		if err := resume(*resumeFrom, opts); err != nil {
			fmt.Fprintln(os.Stderr, "piscale:", err)
			os.Exit(1)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "piscale: -scenario is required (or -list / -study / -resume-from / -bench-json)")
		os.Exit(2)
	}
	if err := run(*name, opts); err != nil {
		fmt.Fprintln(os.Stderr, "piscale:", err)
		os.Exit(1)
	}
}

// runOpts carries the command-line overrides into a scenario run: the
// shared cliconfig surface plus piscale's own knobs.
type runOpts struct {
	common         cliconfig.Common
	traceTail      int
	quiet          bool
	checkpointAt   time.Duration
	checkpointFile string
	traceOut       string
	metricsDump    bool
}

// beginObs attaches the optional observation channels to a run before
// it starts: the span tracer behind -trace-out, and the solver's phase
// profiler when -metrics-dump will want wall attribution. The
// zero-perturbation gate proves neither can change the run.
func beginObs(r *scenario.Run, o runOpts) *obs.Tracer {
	if o.metricsDump {
		r.Cloud.Net.EnableProfiling(true)
	}
	if o.traceOut == "" {
		return nil
	}
	tr := obs.NewTracer(obs.DefaultTraceCap)
	r.SetTracer(tr)
	return tr
}

// finishObs drains the observation channels after the run: the Chrome
// trace-event file and the Prometheus text dump of the final kernel
// stats.
func finishObs(r *scenario.Run, o runOpts, tr *obs.Tracer) error {
	if tr != nil {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d spans (%d dropped) to %s — open in Perfetto (ui.perfetto.dev) or chrome://tracing\n",
			tr.Len(), tr.Dropped(), o.traceOut)
	}
	if o.metricsDump {
		reg := obs.NewRegistry()
		ks := r.Cloud.KernelStats()
		reg.RegisterCollector(func(e *obs.Emitter) {
			core.CollectKernelStats(e, ks)
			if ks.Net.FlushWall > 0 {
				e.Gauge("pisim_phase_flush_wall_seconds", ks.Net.FlushWall.Seconds())
				e.Gauge("pisim_phase_solve_wall_seconds", ks.Net.SolveWall.Seconds())
			}
		})
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// benchEntry is one scenario's row of the benchmark trajectory.
type benchEntry struct {
	Name        string  `json:"name"`
	Nodes       int     `json:"nodes"`
	Racks       int     `json:"racks,omitempty"`
	SimSeconds  float64 `json:"sim_s,omitempty"`
	WallSeconds float64 `json:"wall_s,omitempty"`
	// BuildSeconds is the fleet-construction wall time (cloud assembly
	// plus fleet spawn) — the series the PR 3 fleet builder moves.
	BuildSeconds float64 `json:"build_s,omitempty"`
	NsPerOp      int64   `json:"ns_per_op"`
	Events       uint64  `json:"events,omitempty"`
	EventsPerS   float64 `json:"events_per_s"`
	SimPerWall   float64 `json:"sim_s_per_wall_s"`
	TraceDigest  string  `json:"trace_digest,omitempty"`
	// FlushSeconds/SolveSeconds attribute run-phase wall time to the
	// network kernel's flush passes and to the congestion solver inside
	// them — the PR 8 phase profiler, enabled only for bench runs (the
	// zero-perturbation gate proves enabling it cannot change results).
	// wall_s - flush_s is scheduler+workload time; flush_s - solve_s is
	// domain bookkeeping around the solves.
	FlushSeconds float64 `json:"flush_s,omitempty"`
	SolveSeconds float64 `json:"solve_s,omitempty"`
	// MaxRSSBytes is the process's peak resident set size (getrusage
	// ru_maxrss) sampled as this arm finished. Peak RSS is monotone
	// over the process, so each row is the high-water mark so far —
	// the series the PR 9 sharded advance must not regress.
	MaxRSSBytes uint64 `json:"max_rss_bytes,omitempty"`
	// RouteSynthHits/DijkstraFallbacks split cold-route work between
	// the structured synthesis and the full Dijkstra — the PR 10
	// cross-pod series. An all-links-up fat-tree run must show zero
	// fallbacks (asserted before the artifact is written).
	RouteSynthHits    uint64 `json:"route_synth_hits,omitempty"`
	DijkstraFallbacks uint64 `json:"dijkstra_fallbacks,omitempty"`
}

// pr1Baseline records the PR 1 numbers for the scenarios that existed
// then. Keeping earlier baselines in the emitted JSON makes every
// BENCH_PR<N>.json self-contained: the improvement claim travels with
// the data.
var pr1Baseline = map[string]benchEntry{
	"megafleet-1000": {Name: "megafleet-1000", Nodes: 1040, NsPerOp: 2714070664, EventsPerS: 3204, SimPerWall: 71.42},
	"flash-crowd":    {Name: "flash-crowd", Nodes: 200, NsPerOp: 713221764, EventsPerS: 18173, SimPerWall: 426.7},
}

// pr2Baseline is BENCH_PR2.json's recorded trajectory. Note ns_per_op
// there is the run phase only — PR 2 measured wall time inside Execute,
// after construction — so it is comparable to this file's ns_per_op but
// NOT to build_s: no construction series existed before PR 3. Before
// the fleet builder, megafleet construction ran one node at a time
// through Sscanf parsing, eager per-node HTTP muxes and JSON status
// polling per placement (~10.4 s for megafleet-10000 on the PR 3
// reference machine, vs the build_s this file records).
var pr2Baseline = map[string]benchEntry{
	"brownout-fabric": {Name: "brownout-fabric", Nodes: 56, NsPerOp: 26216472, EventsPerS: 238590, SimPerWall: 11443.2},
	"diurnal-day":     {Name: "diurnal-day", Nodes: 56, NsPerOp: 9344399, EventsPerS: 271821, SimPerWall: 64209.6},
	"flash-crowd":     {Name: "flash-crowd", Nodes: 200, NsPerOp: 111724842, EventsPerS: 114361, SimPerWall: 2685.2},
	"megafleet-1000":  {Name: "megafleet-1000", Nodes: 1040, NsPerOp: 68087063, EventsPerS: 79061, SimPerWall: 1762.4},
	"megafleet-10000": {Name: "megafleet-10000", Nodes: 10000, NsPerOp: 345515660, EventsPerS: 14856, SimPerWall: 173.7},
	"migration-storm": {Name: "migration-storm", Nodes: 56, NsPerOp: 5631652, EventsPerS: 166736, SimPerWall: 53270.3},
	"node-churn":      {Name: "node-churn", Nodes: 56, NsPerOp: 5666202, EventsPerS: 415622, SimPerWall: 52945.5},
	"rack-blackout":   {Name: "rack-blackout", Nodes: 56, NsPerOp: 8412538, EventsPerS: 337354, SimPerWall: 35661.1},
}

// pr3Baseline is BENCH_PR3.json's recorded trajectory: the parallel
// fleet builder's numbers, before the PR 4 run-phase kernel (lazy flow
// accounting, parallel domain solving, hierarchical telemetry,
// structured route synthesis). ns_per_op and events_per_s measure the
// run phase; build_s the construction phase.
var pr3Baseline = map[string]benchEntry{
	"brownout-fabric":  {Name: "brownout-fabric", Nodes: 56, NsPerOp: 20582778, BuildSeconds: 0.0013, EventsPerS: 303895, SimPerWall: 14575.3},
	"diurnal-day":      {Name: "diurnal-day", Nodes: 56, NsPerOp: 7797693, BuildSeconds: 0.0015, EventsPerS: 325737, SimPerWall: 76945.8},
	"flash-crowd":      {Name: "flash-crowd", Nodes: 200, NsPerOp: 106647457, BuildSeconds: 0.0015, EventsPerS: 119806, SimPerWall: 2813.0},
	"megafleet-1000":   {Name: "megafleet-1000", Nodes: 1040, NsPerOp: 57730180, BuildSeconds: 0.0148, EventsPerS: 93244, SimPerWall: 2078.6},
	"megafleet-10000":  {Name: "megafleet-10000", Nodes: 10000, NsPerOp: 328762373, BuildSeconds: 0.1450, EventsPerS: 15613, SimPerWall: 182.5},
	"megafleet-100000": {Name: "megafleet-100000", Nodes: 100000, NsPerOp: 2132795391, BuildSeconds: 2.1306, EventsPerS: 746, SimPerWall: 14.1},
	"migration-storm":  {Name: "migration-storm", Nodes: 56, NsPerOp: 3535367, BuildSeconds: 0.0017, EventsPerS: 265602, SimPerWall: 84856.8},
	"node-churn":       {Name: "node-churn", Nodes: 56, NsPerOp: 5029564, BuildSeconds: 0.0011, EventsPerS: 468231, SimPerWall: 59647.3},
	"rack-blackout":    {Name: "rack-blackout", Nodes: 56, NsPerOp: 6347473, BuildSeconds: 0.0012, EventsPerS: 447107, SimPerWall: 47262.9},
}

// schedulerSeriesScenarios are the megafleets the classic-vs-calendar
// scheduler comparison reruns: the scales where the event scheduler is
// a measurable share of the run phase.
var schedulerSeriesScenarios = []string{"megafleet-10000", "megafleet-100000", "megafleet-1000000"}

// schedEntry is one arm of the scheduler comparison series.
type schedEntry struct {
	benchEntry
	Scheduler string `json:"scheduler"`
}

// advEntry is one arm of the serial-vs-sharded advance series.
type advEntry struct {
	benchEntry
	// Advance is "serial" (single-loop engine) or "sharded(KxW)" for K
	// pod shards staged by W workers.
	Advance string `json:"advance"`
}

// routeSynthSeriesScenarios is where cold-route cost is the dominant
// run-phase term: the k=74 fat-tree, whose gravity mix makes almost
// every cold pair cross-pod.
var routeSynthSeriesScenarios = []string{"megafleet-fattree-100000"}

// routeEntry is one arm of the synthesis-vs-Dijkstra routing series.
type routeEntry struct {
	benchEntry
	// Routes is "synth" (the default: structured synthesis with
	// Dijkstra fallback), "dijkstra-only" (the -no-route-synth
	// ablation), or "synth+sharded(W workers)".
	Routes string `json:"routes"`
}

// runBenchJSON executes every canned scenario once (the calendar
// scheduler is the default), reruns the megafleets on the classic heap
// for the scheduler events/s series and under the pod-sharded advance
// for the serial-vs-sharded series, reruns the 100k fat-tree with
// route synthesis ablated (and sharded) for the synthesis-vs-Dijkstra
// series, and writes the whole trajectory —
// plus the PR 1–PR 3 baselines; the classic arm doubles as the PR 4
// kernel baseline, since the scheduler is the only run-phase change —
// to path. The emitted series also records each arm's trace digest, so
// the artifact itself witnesses that both schedulers produced identical
// runs. Every arm runs with the network kernel's phase profiler on, so
// each row splits its run wall time into flush_s/solve_s.
func runBenchJSON(path string) error {
	type trajectory struct {
		GeneratedBy string                `json:"generated_by"`
		GoVersion   string                `json:"go_version"`
		GoosGoarch  string                `json:"goos_goarch"`
		BaselinePR1 map[string]benchEntry `json:"baseline_pr1"`
		BaselinePR2 map[string]benchEntry `json:"baseline_pr2"`
		BaselinePR3 map[string]benchEntry `json:"baseline_pr3"`
		// BaselinePR4 is the classic-heap (PR 4 kernel) rerun of the
		// megafleets, recorded in the same run on the same machine.
		BaselinePR4 map[string]benchEntry `json:"baseline_pr4"`
		Scenarios   []benchEntry          `json:"scenarios"`
		// SchedulerSeries is the classic-vs-calendar events/s comparison
		// at 10k/100k/1M nodes.
		SchedulerSeries []schedEntry `json:"scheduler_series"`
		// AdvanceSeries is the serial-vs-sharded advance events/s
		// comparison at the same scales; both arms' trace digests are
		// asserted identical before the artifact is written, so the
		// file itself witnesses the equivalence claim.
		AdvanceSeries []advEntry `json:"advance_series"`
		// RouteSynthSeries is the synthesis-vs-Dijkstra comparison on
		// the 100k-node fat-tree: the default arm (which must finish
		// with zero fallbacks), the -no-route-synth ablation (every
		// cold route pays the full Dijkstra), and the pod-sharded
		// rerun. All three digests are asserted identical, and the
		// synth arm is asserted faster than the ablation, before the
		// artifact is written.
		RouteSynthSeries []routeEntry `json:"route_synth_series"`
	}
	out := trajectory{
		GeneratedBy: "piscale -bench-json",
		GoVersion:   runtime.Version(),
		GoosGoarch:  runtime.GOOS + "/" + runtime.GOARCH,
		BaselinePR1: pr1Baseline,
		BaselinePR2: pr2Baseline,
		BaselinePR3: pr3Baseline,
		BaselinePR4: map[string]benchEntry{},
	}
	execute := func(spec scenario.Spec) (benchEntry, error) {
		r, err := scenario.New(spec)
		if err != nil {
			return benchEntry{}, fmt.Errorf("scenario %s: %w", spec.Name, err)
		}
		defer r.Cloud.Close()
		// Phase profiling is on for every bench arm so each row carries
		// its flush/solve wall split; the digest cross-checks below (and
		// the zero-perturbation gate) prove it cannot change the run.
		r.Cloud.Net.EnableProfiling(true)
		rep, err := r.Execute()
		if err != nil {
			return benchEntry{}, fmt.Errorf("scenario %s: %w", spec.Name, err)
		}
		wall := rep.WallTime.Seconds()
		return benchEntry{
			Name:              rep.Name,
			Nodes:             rep.Nodes,
			Racks:             rep.Racks,
			SimSeconds:        rep.SimTime.Seconds(),
			WallSeconds:       wall,
			BuildSeconds:      rep.BuildWallTime.Seconds(),
			NsPerOp:           rep.WallTime.Nanoseconds(),
			Events:            rep.EventsFired,
			EventsPerS:        float64(rep.EventsFired) / wall,
			SimPerWall:        rep.SimTime.Seconds() / wall,
			TraceDigest:       rep.TraceDigest(),
			FlushSeconds:      rep.Metrics["phase_flush_wall_s"],
			SolveSeconds:      rep.Metrics["phase_solve_wall_s"],
			MaxRSSBytes:       maxRSSBytes(),
			RouteSynthHits:    uint64(rep.Metrics["route_synth_hits"]),
			DijkstraFallbacks: uint64(rep.Metrics["dijkstra_fallbacks"]),
		}, nil
	}
	calendar := map[string]benchEntry{}
	for _, n := range scenario.Names() {
		spec, err := scenario.Catalog(n)
		if err != nil {
			return err
		}
		e, err := execute(spec)
		if err != nil {
			return err
		}
		out.Scenarios = append(out.Scenarios, e)
		calendar[n] = e
		fmt.Printf("%-18s %7d nodes  built %6.2fs  %8.0f events/s  %9.1f sim-s/wall-s  flush %4.1f%%\n",
			e.Name, e.Nodes, e.BuildSeconds, e.EventsPerS, e.SimPerWall, 100*e.FlushSeconds/e.WallSeconds)
	}
	for _, n := range schedulerSeriesScenarios {
		spec, err := scenario.Catalog(n)
		if err != nil {
			return err
		}
		spec.Cloud.ClassicHeap = true
		classic, err := execute(spec)
		if err != nil {
			return err
		}
		cal := calendar[n]
		if classic.TraceDigest != cal.TraceDigest {
			return fmt.Errorf("scenario %s: classic-heap trace digest %s differs from calendar %s",
				n, classic.TraceDigest, cal.TraceDigest)
		}
		out.SchedulerSeries = append(out.SchedulerSeries,
			schedEntry{benchEntry: cal, Scheduler: "calendar"},
			schedEntry{benchEntry: classic, Scheduler: "classic-heap"})
		out.BaselinePR4[n] = classic
		fmt.Printf("%-18s classic-heap rerun: %8.0f events/s (calendar %8.0f), digests identical\n",
			n, classic.EventsPerS, cal.EventsPerS)
	}
	for _, n := range schedulerSeriesScenarios {
		spec, err := scenario.Catalog(n)
		if err != nil {
			return err
		}
		// Auto shard/worker counts: one shard per rack group up to
		// GOMAXPROCS, staged by up to GOMAXPROCS workers. The serial arm
		// is the calendar run already recorded above.
		spec.Cloud.Kernel.ShardedAdvance = true
		sharded, err := execute(spec)
		if err != nil {
			return err
		}
		cal := calendar[n]
		if sharded.TraceDigest != cal.TraceDigest {
			return fmt.Errorf("scenario %s: sharded-advance trace digest %s differs from serial %s",
				n, sharded.TraceDigest, cal.TraceDigest)
		}
		out.AdvanceSeries = append(out.AdvanceSeries,
			advEntry{benchEntry: cal, Advance: "serial"},
			advEntry{benchEntry: sharded, Advance: fmt.Sprintf("sharded(%d workers)", runtime.GOMAXPROCS(0))})
		fmt.Printf("%-18s sharded rerun: %8.0f events/s (serial %8.0f), digests identical\n",
			n, sharded.EventsPerS, cal.EventsPerS)
	}
	for _, n := range routeSynthSeriesScenarios {
		cal := calendar[n]
		// The headline claim first: the default arm settled every cold
		// route by synthesis. On an all-links-up fat-tree a single
		// fallback is a coverage bug, not noise.
		if cal.DijkstraFallbacks != 0 {
			return fmt.Errorf("scenario %s: %d Dijkstra fallbacks on an all-links-up fat-tree", n, cal.DijkstraFallbacks)
		}
		if cal.RouteSynthHits == 0 {
			return fmt.Errorf("scenario %s: route synthesis never engaged", n)
		}
		spec, err := scenario.Catalog(n)
		if err != nil {
			return err
		}
		spec.Cloud.Kernel.DisableRouteSynthesis = true
		ablated, err := execute(spec)
		if err != nil {
			return err
		}
		if ablated.TraceDigest != cal.TraceDigest {
			return fmt.Errorf("scenario %s: dijkstra-only trace digest %s differs from synth %s",
				n, ablated.TraceDigest, cal.TraceDigest)
		}
		if ablated.RouteSynthHits != 0 || ablated.DijkstraFallbacks == 0 {
			return fmt.Errorf("scenario %s: ablation arm did not disable synthesis (synth %d, dijkstra %d)",
				n, ablated.RouteSynthHits, ablated.DijkstraFallbacks)
		}
		if ablated.EventsPerS >= cal.EventsPerS {
			return fmt.Errorf("scenario %s: dijkstra-only arm (%0.f events/s) not slower than synthesis (%0.f events/s) — the optimisation claim failed",
				n, ablated.EventsPerS, cal.EventsPerS)
		}
		spec, err = scenario.Catalog(n)
		if err != nil {
			return err
		}
		spec.Cloud.Kernel.ShardedAdvance = true
		spec.Cloud.Kernel.ShardWorkers = 4
		sharded, err := execute(spec)
		if err != nil {
			return err
		}
		if sharded.TraceDigest != cal.TraceDigest {
			return fmt.Errorf("scenario %s: sharded trace digest %s differs from serial %s",
				n, sharded.TraceDigest, cal.TraceDigest)
		}
		out.RouteSynthSeries = append(out.RouteSynthSeries,
			routeEntry{benchEntry: cal, Routes: "synth"},
			routeEntry{benchEntry: ablated, Routes: "dijkstra-only"},
			routeEntry{benchEntry: sharded, Routes: "synth+sharded(4 workers)"})
		fmt.Printf("%-18s routes: synth %8.0f events/s (0 fallbacks), dijkstra-only %8.0f, sharded %8.0f — digests identical\n",
			n, cal.EventsPerS, ablated.EventsPerS, sharded.EventsPerS)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d scenarios, %d scheduler-series arms, %d advance-series arms, %d route-series arms)\n",
		path, len(out.Scenarios), len(out.SchedulerSeries), len(out.AdvanceSeries), len(out.RouteSynthSeries))
	return nil
}

// kernelModeLine renders the run header's scheduler/solver/advance
// summary.
func kernelModeLine(c cliconfig.Common) string {
	scheduler := "calendar"
	if c.ClassicHeap {
		scheduler = "classic-heap"
	}
	solver := "parallel(auto)"
	switch {
	case c.SerialSolve:
		solver = "serial"
	case c.SolveWorkers > 0:
		solver = fmt.Sprintf("parallel(%d workers, forced)", c.SolveWorkers)
	}
	advance := "lazy"
	if c.EagerAdvance {
		advance = "eager"
	}
	run := "single-loop"
	if c.ShardedAdvance || c.ShardWorkers > 0 || c.Shards > 0 {
		shards, workers := "auto", "auto"
		if c.Shards > 0 {
			shards = fmt.Sprintf("%d", c.Shards)
		}
		if c.ShardWorkers > 0 {
			workers = fmt.Sprintf("%d", c.ShardWorkers)
		}
		run = fmt.Sprintf("sharded(shards=%s workers=%s)", shards, workers)
	}
	routes := "synth+dijkstra"
	if c.NoRouteSynth {
		routes = "dijkstra-only"
	}
	return fmt.Sprintf("run-phase kernel: scheduler=%s solver=%s advance=%s run=%s routes=%s", scheduler, solver, advance, run, routes)
}

// specFor resolves a catalog scenario with the command-line overrides
// applied — shared by run, checkpointing and resume (a checkpoint file
// records exactly these overrides, so the resuming process rebuilds the
// identical spec).
func specFor(name string, o runOpts) (scenario.Spec, error) {
	return o.common.SpecRequest(name).Resolve()
}

// checkpointPayload is the on-disk checkpoint: the replay recipe (the
// scenario plus the overrides that shaped it — cliconfig's wire spec,
// the same decoding the session API speaks) and the captured
// cross-layer kernel fingerprint a resume must reproduce bit-for-bit.
// Construction snapshots are process-local; what crosses processes is
// the proof obligation.
type checkpointPayload struct {
	cliconfig.SpecRequest

	At           time.Duration `json:"at_ns"`
	KernelNow    int64         `json:"kernel_now_ns"`
	KernelSeq    uint64        `json:"kernel_seq"`
	KernelFired  uint64        `json:"kernel_fired"`
	KernelPend   int           `json:"kernel_pending"`
	KernelDigest string        `json:"kernel_digest"`
	TraceLen     int           `json:"trace_len"`
	TraceDigest  string        `json:"trace_digest"`
}

func run(name string, o runOpts) error {
	spec, err := specFor(name, o)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %s: %d nodes, %v simulated\n%s\n",
		spec.Name, scenario.NodeCount(spec), spec.Duration, kernelModeLine(o.common))

	r, err := scenario.New(spec)
	if err != nil {
		return err
	}
	defer r.Cloud.Close()
	tr := beginObs(r, o)
	if !o.quiet {
		r.OnEvent = func(ev scenario.TraceEvent) { fmt.Println(ev) }
	}
	if o.checkpointAt > 0 {
		if err := r.RunTo(o.checkpointAt); err != nil {
			return err
		}
		chk := r.Checkpoint()
		st := chk.Core.State()
		payload := checkpointPayload{
			SpecRequest: o.common.SpecRequest(name),
			At:          chk.At,
			KernelNow:   int64(st.Now), KernelSeq: st.Seq, KernelFired: st.Fired,
			KernelPend: st.Pending, KernelDigest: st.Digest,
			TraceLen: chk.TraceLen, TraceDigest: chk.TraceDigest,
		}
		path := o.checkpointFile
		if path == "" {
			path = name + ".ckpt.json"
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("checkpoint at %v written to %s (kernel digest %s)\n", chk.At, path, st.Digest)
	}
	rep, err := r.Execute()
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	if o.traceTail > 0 {
		tail := rep.Trace
		if len(tail) > o.traceTail {
			tail = tail[len(tail)-o.traceTail:]
		}
		fmt.Printf("last %d trace events:\n", len(tail))
		for _, ev := range tail {
			fmt.Println(" ", ev)
		}
	}
	return finishObs(r, o, tr)
}

// resume rebuilds a checkpointed scenario, replays it to the capture
// instant, proves the restored kernel matches the recorded fingerprint
// byte-for-byte, and finishes the run.
func resume(path string, o runOpts) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var p checkpointPayload
	if err := json.Unmarshal(data, &p); err != nil {
		return fmt.Errorf("reading checkpoint %s: %w", path, err)
	}
	req := p.SpecRequest
	// Kernel knobs passed on the resume command line win over the
	// recorded ones: all four modes are byte-identical by construction,
	// so ablating the resume (e.g. -classic-heap) is safe and the
	// verification below still must pass.
	if o.common.ClassicHeap {
		req.ClassicHeap = true
	}
	if o.common.SerialSolve {
		req.SerialSolve = true
	}
	if o.common.EagerAdvance {
		req.EagerAdvance = true
	}
	if o.common.SolveWorkers > 0 {
		req.SolveWorkers = o.common.SolveWorkers
	}
	if o.common.ShardedAdvance || o.common.ShardWorkers > 0 || o.common.Shards > 0 {
		req.ShardedAdvance = true
	}
	if o.common.ShardWorkers > 0 {
		req.ShardWorkers = o.common.ShardWorkers
	}
	if o.common.Shards > 0 {
		req.Shards = o.common.Shards
	}
	spec, err := req.Resolve()
	if err != nil {
		return err
	}
	fmt.Printf("resuming %s from %s: replaying to %v\n%s\n",
		spec.Name, path, p.At, kernelModeLine(cliconfig.Common{
			ClassicHeap: req.ClassicHeap, SerialSolve: req.SerialSolve,
			EagerAdvance: req.EagerAdvance, SolveWorkers: req.SolveWorkers,
			ShardedAdvance: req.ShardedAdvance, ShardWorkers: req.ShardWorkers,
			Shards: req.Shards,
		}))
	r, err := scenario.New(spec)
	if err != nil {
		return err
	}
	defer r.Cloud.Close()
	tr := beginObs(r, o)
	if err := r.RunTo(p.At); err != nil {
		return err
	}
	st := r.Cloud.KernelState()
	trace := r.Trace()
	switch {
	case st.Digest != p.KernelDigest || int64(st.Now) != p.KernelNow ||
		st.Seq != p.KernelSeq || st.Fired != p.KernelFired || st.Pending != p.KernelPend:
		return fmt.Errorf("kernel state at %v does not match the checkpoint: got now=%v seq=%d fired=%d pending=%d digest=%s, want now=%v seq=%d fired=%d pending=%d digest=%s",
			p.At, st.Now, st.Seq, st.Fired, st.Pending, st.Digest,
			time.Duration(p.KernelNow), p.KernelSeq, p.KernelFired, p.KernelPend, p.KernelDigest)
	case len(trace) != p.TraceLen || scenario.DigestTrace(trace) != p.TraceDigest:
		return fmt.Errorf("trace prefix at %v does not match the checkpoint (%d events, digest %s; want %d, %s)",
			p.At, len(trace), scenario.DigestTrace(trace), p.TraceLen, p.TraceDigest)
	}
	fmt.Printf("resume verified: kernel state at %v byte-identical to the checkpoint (digest %s)\n", p.At, st.Digest)
	if !o.quiet {
		r.OnEvent = func(ev scenario.TraceEvent) { fmt.Println(ev) }
	}
	rep, err := r.Execute()
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	if o.traceTail > 0 {
		tail := rep.Trace
		if len(tail) > o.traceTail {
			tail = tail[len(tail)-o.traceTail:]
		}
		fmt.Printf("last %d trace events:\n", len(tail))
		for _, ev := range tail {
			fmt.Println(" ", ev)
		}
	}
	return finishObs(r, o, tr)
}
