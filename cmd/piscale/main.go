// Command piscale runs canned or customised scenarios headless, as fast
// as the hardware allows: it builds the scenario's cloud, replays the
// whole fault-and-traffic timeline in virtual time, and prints the
// report. It is the scale-out workhorse behind the CI bench-smoke job and
// the quickest way to watch a 1000-node fleet survive a migration storm.
//
// Usage:
//
//	piscale -list
//	piscale -scenario migration-storm
//	piscale -scenario megafleet-1000 -trace 20
//	piscale -scenario diurnal-day -racks 10 -hosts-per-rack 30 -duration 20m
//	piscale -bench-json BENCH_PR3.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/scenario"
)

func main() {
	list := flag.Bool("list", false, "list canned scenarios and exit")
	name := flag.String("scenario", "", "canned scenario to run (see -list)")
	seed := flag.Int64("seed", -1, "override the scenario's RNG seed")
	duration := flag.Duration("duration", 0, "override the simulated duration")
	racks := flag.Int("racks", 0, "override the rack count")
	hostsPerRack := flag.Int("hosts-per-rack", 0, "override Pis per rack")
	sample := flag.Duration("sample", 0, "override the metrics sampling cadence")
	traceTail := flag.Int("trace", 0, "print the last N trace events")
	quiet := flag.Bool("q", false, "suppress live event streaming")
	benchJSON := flag.String("bench-json", "", "run every canned scenario once and write the benchmark trajectory to FILE")
	flag.Parse()

	if *list {
		fmt.Print("canned scenarios:\n" + scenario.Describe())
		return
	}
	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "piscale:", err)
			os.Exit(1)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "piscale: -scenario is required (or -list / -bench-json)")
		os.Exit(2)
	}
	if err := run(*name, *seed, *duration, *racks, *hostsPerRack, *sample, *traceTail, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "piscale:", err)
		os.Exit(1)
	}
}

// benchEntry is one scenario's row of the benchmark trajectory.
type benchEntry struct {
	Name        string  `json:"name"`
	Nodes       int     `json:"nodes"`
	Racks       int     `json:"racks,omitempty"`
	SimSeconds  float64 `json:"sim_s,omitempty"`
	WallSeconds float64 `json:"wall_s,omitempty"`
	// BuildSeconds is the fleet-construction wall time (cloud assembly
	// plus fleet spawn) — the series the PR 3 fleet builder moves.
	BuildSeconds float64 `json:"build_s,omitempty"`
	NsPerOp      int64   `json:"ns_per_op"`
	Events       uint64  `json:"events,omitempty"`
	EventsPerS   float64 `json:"events_per_s"`
	SimPerWall   float64 `json:"sim_s_per_wall_s"`
	TraceDigest  string  `json:"trace_digest,omitempty"`
}

// pr1Baseline records the PR 1 numbers for the scenarios that existed
// then. Keeping earlier baselines in the emitted JSON makes every
// BENCH_PR<N>.json self-contained: the improvement claim travels with
// the data.
var pr1Baseline = map[string]benchEntry{
	"megafleet-1000": {Name: "megafleet-1000", Nodes: 1040, NsPerOp: 2714070664, EventsPerS: 3204, SimPerWall: 71.42},
	"flash-crowd":    {Name: "flash-crowd", Nodes: 200, NsPerOp: 713221764, EventsPerS: 18173, SimPerWall: 426.7},
}

// pr2Baseline is BENCH_PR2.json's recorded trajectory. Note ns_per_op
// there is the run phase only — PR 2 measured wall time inside Execute,
// after construction — so it is comparable to this file's ns_per_op but
// NOT to build_s: no construction series existed before PR 3. Before
// the fleet builder, megafleet construction ran one node at a time
// through Sscanf parsing, eager per-node HTTP muxes and JSON status
// polling per placement (~10.4 s for megafleet-10000 on the PR 3
// reference machine, vs the build_s this file records).
var pr2Baseline = map[string]benchEntry{
	"brownout-fabric": {Name: "brownout-fabric", Nodes: 56, NsPerOp: 26216472, EventsPerS: 238590, SimPerWall: 11443.2},
	"diurnal-day":     {Name: "diurnal-day", Nodes: 56, NsPerOp: 9344399, EventsPerS: 271821, SimPerWall: 64209.6},
	"flash-crowd":     {Name: "flash-crowd", Nodes: 200, NsPerOp: 111724842, EventsPerS: 114361, SimPerWall: 2685.2},
	"megafleet-1000":  {Name: "megafleet-1000", Nodes: 1040, NsPerOp: 68087063, EventsPerS: 79061, SimPerWall: 1762.4},
	"megafleet-10000": {Name: "megafleet-10000", Nodes: 10000, NsPerOp: 345515660, EventsPerS: 14856, SimPerWall: 173.7},
	"migration-storm": {Name: "migration-storm", Nodes: 56, NsPerOp: 5631652, EventsPerS: 166736, SimPerWall: 53270.3},
	"node-churn":      {Name: "node-churn", Nodes: 56, NsPerOp: 5666202, EventsPerS: 415622, SimPerWall: 52945.5},
	"rack-blackout":   {Name: "rack-blackout", Nodes: 56, NsPerOp: 8412538, EventsPerS: 337354, SimPerWall: 35661.1},
}

// runBenchJSON executes every canned scenario once and writes the
// per-scenario throughput trajectory (plus the PR 1 and PR 2 baselines)
// to path.
func runBenchJSON(path string) error {
	type trajectory struct {
		GeneratedBy string                `json:"generated_by"`
		GoVersion   string                `json:"go_version"`
		GoosGoarch  string                `json:"goos_goarch"`
		BaselinePR1 map[string]benchEntry `json:"baseline_pr1"`
		BaselinePR2 map[string]benchEntry `json:"baseline_pr2"`
		Scenarios   []benchEntry          `json:"scenarios"`
	}
	out := trajectory{
		GeneratedBy: "piscale -bench-json",
		GoVersion:   runtime.Version(),
		GoosGoarch:  runtime.GOOS + "/" + runtime.GOARCH,
		BaselinePR1: pr1Baseline,
		BaselinePR2: pr2Baseline,
	}
	for _, n := range scenario.Names() {
		spec, err := scenario.Catalog(n)
		if err != nil {
			return err
		}
		rep, err := scenario.Execute(spec)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", n, err)
		}
		wall := rep.WallTime.Seconds()
		out.Scenarios = append(out.Scenarios, benchEntry{
			Name:         rep.Name,
			Nodes:        rep.Nodes,
			Racks:        rep.Racks,
			SimSeconds:   rep.SimTime.Seconds(),
			WallSeconds:  wall,
			BuildSeconds: rep.BuildWallTime.Seconds(),
			NsPerOp:      rep.WallTime.Nanoseconds(),
			Events:       rep.EventsFired,
			EventsPerS:   float64(rep.EventsFired) / wall,
			SimPerWall:   rep.SimTime.Seconds() / wall,
			TraceDigest:  rep.TraceDigest(),
		})
		fmt.Printf("%-18s %7d nodes  built %6.2fs  %8.0f events/s  %9.1f sim-s/wall-s\n",
			rep.Name, rep.Nodes, rep.BuildWallTime.Seconds(),
			float64(rep.EventsFired)/wall, rep.SimTime.Seconds()/wall)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d scenarios)\n", path, len(out.Scenarios))
	return nil
}

func run(name string, seed int64, duration time.Duration, racks, hostsPerRack int, sample time.Duration, traceTail int, quiet bool) error {
	spec, err := scenario.Catalog(name)
	if err != nil {
		return err
	}
	if seed >= 0 {
		spec.Cloud.Seed = seed
	}
	if duration > 0 {
		spec.Duration = duration
	}
	if racks > 0 {
		spec.Cloud.Racks = racks
	}
	if hostsPerRack > 0 {
		spec.Cloud.HostsPerRack = hostsPerRack
	}
	if sample > 0 {
		spec.SampleEvery = sample
	}

	r, err := scenario.New(spec)
	if err != nil {
		return err
	}
	defer r.Cloud.Close()
	if !quiet {
		r.OnEvent = func(ev scenario.TraceEvent) { fmt.Println(ev) }
	}
	rep, err := r.Execute()
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	if traceTail > 0 {
		tail := rep.Trace
		if len(tail) > traceTail {
			tail = tail[len(tail)-traceTail:]
		}
		fmt.Printf("last %d trace events:\n", len(tail))
		for _, ev := range tail {
			fmt.Println(" ", ev)
		}
	}
	return nil
}
