//go:build !linux

package main

import "runtime"

// maxRSSBytes approximates peak resident memory where getrusage is
// unavailable or reports in platform-specific units: total bytes the
// Go runtime has obtained from the OS. An overestimate of live heap
// but comparable run-to-run, which is what the bench series needs.
func maxRSSBytes() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Sys
}
