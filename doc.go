// Package repro is the root of the Glasgow Raspberry Pi Cloud (PiCloud)
// reproduction: a deterministic, full-stack scale model of the 56-node
// Raspberry Pi data-centre testbed described in Tso et al., "The Glasgow
// Raspberry Pi Cloud: A Scale Model for Cloud Computing Infrastructures"
// (CCRM / ICDCS Workshops 2013).
//
// The entry point for library users is internal/core (the Cloud facade);
// runnable binaries live under cmd/ and worked examples under examples/.
// See README.md for the tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate every table and figure.
package repro
