package repro_test

// One benchmark per table and figure of the paper, plus one per research
// direction experiment (R1–R8) and ablation micro-benches. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiments runner and
// asserts the paper-shape result, so `-bench` doubles as the
// reproduction gate. Custom metrics (ns/op aside) expose the headline
// quantity of each experiment.

import (
	"os"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// runExp executes one experiment per benchmark iteration and returns the
// last result for metric reporting.
func runExp(b *testing.B, f func() (*experiments.Result, error)) *experiments.Result {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := f()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	return last
}

// BenchmarkTableICost regenerates Table I (cost/power/cooling of 56
// servers, x86 vs Pi).
func BenchmarkTableICost(b *testing.B) {
	r := runExp(b, experiments.Table1)
	if r.Metrics["picloud_total_usd"] != 1960 || r.Metrics["testbed_total_usd"] != 112000 {
		b.Fatalf("Table I numbers drifted: %v", r.Metrics)
	}
	b.ReportMetric(r.Metrics["cost_ratio"], "cost-ratio")
	b.ReportMetric(r.Metrics["power_ratio"], "power-ratio")
}

// BenchmarkFig1Racks regenerates the rack layout (4 × 14).
func BenchmarkFig1Racks(b *testing.B) {
	r := runExp(b, experiments.Fig1)
	if r.Metrics["total_pis"] != 56 {
		b.Fatalf("wrong scale: %v", r.Metrics)
	}
	b.ReportMetric(r.Metrics["idle_power_w"], "idle-W")
}

// BenchmarkFig2Architecture regenerates the multi-root-tree architecture
// with reachability verification and re-cabling.
func BenchmarkFig2Architecture(b *testing.B) {
	r := runExp(b, experiments.Fig2)
	if r.Metrics["recabled_fabrics"] != 2 {
		b.Fatalf("re-cabling failed: %v", r.Metrics)
	}
	b.ReportMetric(r.Metrics["mean_path_hops"], "mean-hops")
}

// BenchmarkFig3Stack boots the per-node software stack with the three
// application containers.
func BenchmarkFig3Stack(b *testing.B) {
	r := runExp(b, experiments.Fig3)
	if r.Metrics["containers_running"] != 3 {
		b.Fatalf("stack incomplete: %v", r.Metrics)
	}
	b.ReportMetric(r.Metrics["node_mem_used_mib"], "node-MiB")
}

// BenchmarkFig4Panel serves and drives the management web interface.
func BenchmarkFig4Panel(b *testing.B) {
	r := runExp(b, experiments.Fig4)
	if r.Metrics["vm_spawned"] != 1 || r.Metrics["limits_set"] != 1 {
		b.Fatalf("management use cases failed: %v", r.Metrics)
	}
	b.ReportMetric(r.Metrics["panel_bytes"], "panel-B")
}

// BenchmarkClaimContainersPerPi verifies the 3-containers-per-Pi density
// claim (C1).
func BenchmarkClaimContainersPerPi(b *testing.B) {
	r := runExp(b, experiments.ClaimDensity)
	if r.Metrics["containers_fitting"] != 3 {
		b.Fatalf("density drifted: %v", r.Metrics)
	}
	b.ReportMetric(r.Metrics["containers_fitting"], "containers")
}

// BenchmarkClaimPowerSocket verifies the single-socket power claim (C2).
func BenchmarkClaimPowerSocket(b *testing.B) {
	r := runExp(b, experiments.ClaimPower)
	if r.Metrics["fits_socket"] != 1 {
		b.Fatalf("socket claim failed: %v", r.Metrics)
	}
	b.ReportMetric(r.Metrics["peak_draw_w"], "peak-W")
}

// BenchmarkClaimCooling verifies the 33% cooling share model (C3).
func BenchmarkClaimCooling(b *testing.B) {
	r := runExp(b, experiments.ClaimCooling)
	b.ReportMetric(r.Metrics["implied_pue"], "PUE")
}

// BenchmarkPlacementAlgorithms runs R1: cross-rack traffic per placer.
func BenchmarkPlacementAlgorithms(b *testing.B) {
	r := runExp(b, experiments.Placement)
	na := r.Metrics["network-aware_cross_rack_mib"]
	rr := r.Metrics["round-robin_cross_rack_mib"]
	if na > rr {
		b.Fatalf("network-aware (%v) worse than round-robin (%v)", na, rr)
	}
	b.ReportMetric(rr-na, "MiB-saved")
}

// BenchmarkConsolidationRipple runs R2: power saved vs congestion and
// latency induced by naive consolidation.
func BenchmarkConsolidationRipple(b *testing.B) {
	r := runExp(b, experiments.ConsolidationRipple)
	if r.Metrics["watts_after"] >= r.Metrics["watts_before"] {
		b.Fatalf("consolidation saved no power: %v", r.Metrics)
	}
	b.ReportMetric(r.Metrics["watts_before"]-r.Metrics["watts_after"], "W-saved")
	b.ReportMetric(r.Metrics["p99_ms_after"]-r.Metrics["p99_ms_before"], "p99-ms-added")
}

// BenchmarkMigrationRouting runs R3: IP vs label routed migration.
func BenchmarkMigrationRouting(b *testing.B) {
	r := runExp(b, experiments.MigrationRouting)
	if r.Metrics["label_flows_broken"] != 0 {
		b.Fatalf("label routing broke flows: %v", r.Metrics)
	}
	b.ReportMetric(r.Metrics["ip_flows_broken"], "ip-broken")
	b.ReportMetric(r.Metrics["label_downtime_ms"], "downtime-ms")
}

// BenchmarkSDNCongestion runs R4: routing policies under a hotspot.
func BenchmarkSDNCongestion(b *testing.B) {
	r := runExp(b, experiments.SDNCongestion)
	b.ReportMetric(r.Metrics["shortest_max_util"], "shortest-util")
	b.ReportMetric(r.Metrics["congestion_max_util"], "congestion-util")
}

// BenchmarkTrafficDynamism runs R5: burstiness of the generated traffic.
func BenchmarkTrafficDynamism(b *testing.B) {
	r := runExp(b, experiments.TrafficDynamism)
	if r.Metrics["epoch_load_cov"] < 0.05 {
		b.Fatalf("traffic too smooth: %v", r.Metrics)
	}
	b.ReportMetric(r.Metrics["epoch_load_cov"], "CoV")
}

// BenchmarkBareVsContainer runs R6: virtualisation-removal comparison.
func BenchmarkBareVsContainer(b *testing.B) {
	r := runExp(b, experiments.BareVsContainer)
	b.ReportMetric(r.Metrics["container_overhead_mib"], "overhead-MiB")
}

// BenchmarkTopologyRecable runs R7: shuffle makespan per fabric.
func BenchmarkTopologyRecable(b *testing.B) {
	r := runExp(b, experiments.TopologyRecable)
	b.ReportMetric(r.Metrics["multiroot_makespan_s"], "multiroot-s")
	b.ReportMetric(r.Metrics["fattree_makespan_s"], "fattree-s")
	b.ReportMetric(r.Metrics["leafspine_makespan_s"], "leafspine-s")
}

// BenchmarkMapReduceScaleOut runs R8: makespan vs worker count.
func BenchmarkMapReduceScaleOut(b *testing.B) {
	r := runExp(b, experiments.MapReduceScaleOut)
	if r.Metrics["workers_56_makespan_s"] >= r.Metrics["workers_07_makespan_s"] {
		b.Fatalf("no scale-out: %v", r.Metrics)
	}
	b.ReportMetric(r.Metrics["workers_07_makespan_s"], "7w-s")
	b.ReportMetric(r.Metrics["workers_56_makespan_s"], "56w-s")
}

// ---------------------------------------------------------------------------
// Scenario-engine benchmarks: one per canned scenario, tracking the perf
// trajectory of fleet-scale runs from PR 1 onward. Each executes the full
// scenario timeline once per iteration and reports simulated-seconds per
// wall-second plus engine events/sec, so `-bench=Scenario -benchtime=1x`
// doubles as the CI smoke gate for the scenario engine.

// runScenario executes a canned scenario once per iteration and reports
// its headline throughput metrics.
func runScenario(b *testing.B, name string) *scenario.Report {
	b.Helper()
	var last *scenario.Report
	for i := 0; i < b.N; i++ {
		spec, err := scenario.Catalog(name)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := scenario.Execute(spec)
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	b.ReportMetric(last.SimTime.Seconds()/last.WallTime.Seconds(), "sim-s/wall-s")
	b.ReportMetric(float64(last.EventsFired)/last.WallTime.Seconds(), "events/s")
	return last
}

// BenchmarkScenarioDiurnalDay runs the compressed day/night curve on the
// published 4×14 testbed.
func BenchmarkScenarioDiurnalDay(b *testing.B) {
	r := runScenario(b, "diurnal-day")
	if r.Metrics["diurnal_flows"] == 0 {
		b.Fatal("diurnal curve generated no traffic")
	}
}

// BenchmarkScenarioMigrationStorm mass-migrates under load.
func BenchmarkScenarioMigrationStorm(b *testing.B) {
	r := runScenario(b, "migration-storm")
	if r.Metrics["migrations_done"] == 0 {
		b.Fatal("storm completed no migrations")
	}
	b.ReportMetric(r.Metrics["migrations_done"], "migrations")
}

// BenchmarkScenarioRackBlackout powers a rack off and back on mid-run.
func BenchmarkScenarioRackBlackout(b *testing.B) {
	r := runScenario(b, "rack-blackout")
	if r.Metrics["faults_injected"] == 0 {
		b.Fatal("no blackout injected")
	}
}

// BenchmarkScenarioNodeChurn cycles random nodes through crash/recover.
func BenchmarkScenarioNodeChurn(b *testing.B) {
	r := runScenario(b, "node-churn")
	if r.Metrics["faults_injected"] == 0 {
		b.Fatal("no churn happened")
	}
}

// BenchmarkScenarioBrownoutFabric shapes every ToR uplink.
func BenchmarkScenarioBrownoutFabric(b *testing.B) {
	r := runScenario(b, "brownout-fabric")
	if r.Metrics["faults_injected"] == 0 {
		b.Fatal("no degradation applied")
	}
}

// BenchmarkScenarioFlashCrowd spikes arrivals on a 200-node leaf-spine.
func BenchmarkScenarioFlashCrowd(b *testing.B) {
	r := runScenario(b, "flash-crowd")
	if r.Nodes != 200 {
		b.Fatalf("flash crowd ran on %d nodes, want 200", r.Nodes)
	}
}

// BenchmarkScenarioMegafleet1000 is the previous scale-out gate: 1040
// simulated nodes with churn and a fabric brownout must complete inside
// the CI bench-smoke job (and, since PR 2, also under -race).
func BenchmarkScenarioMegafleet1000(b *testing.B) {
	r := runScenario(b, "megafleet-1000")
	if r.Nodes < 1000 {
		b.Fatalf("megafleet ran on %d nodes, want ≥ 1000", r.Nodes)
	}
	b.ReportMetric(float64(r.Nodes), "nodes")
}

// BenchmarkScenarioMegafleet10000 is the PR 2 scale gate for the
// incremental congestion-domain solver and the SDN route cache: 10,000
// simulated nodes in 40 racks, with churn and a fabric brownout, must
// complete inside the CI bench-smoke job. Since PR 3's fleet builder
// (template stamping, sharded bring-up, JSON-free boot) the wall time
// is no longer dominated by cloud construction.
func BenchmarkScenarioMegafleet10000(b *testing.B) {
	r := runScenario(b, "megafleet-10000")
	if r.Nodes < 10000 {
		b.Fatalf("megafleet ran on %d nodes, want ≥ 10000", r.Nodes)
	}
	if r.Metrics["faults_injected"] == 0 {
		b.Fatal("no faults injected at scale")
	}
	b.ReportMetric(r.BuildWallTime.Seconds(), "build-s")
	b.ReportMetric(float64(r.Nodes), "nodes")
}

// megafleet100kBudget is the wall-time budget of the 10⁵-node scale
// gate: build plus run must finish inside it on a CI runner. Local
// 1-core measurements sit around 6 s; the budget leaves ~20× headroom
// for slow shared runners while still catching a construction-path
// regression back to the per-node serial/JSON boot (which would take
// minutes). Override with MEGAFLEET100K_BUDGET (a Go duration) when
// qualifying slower hardware.
const megafleet100kBudget = 2 * time.Minute

// BenchmarkScenarioMegafleet100000 is the PR 3 scale gate for the
// parallel, template-based fleet builder: 100,000 simulated nodes in
// 250 racks boot through the full control plane (kernels, suites,
// daemons, DHCP, DNS, placement) and survive churn plus a fabric
// brownout — inside a hard wall-time budget.
func BenchmarkScenarioMegafleet100000(b *testing.B) {
	budget := megafleet100kBudget
	if s := os.Getenv("MEGAFLEET100K_BUDGET"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			b.Fatalf("bad MEGAFLEET100K_BUDGET %q: %v", s, err)
		}
		budget = d
	}
	r := runScenario(b, "megafleet-100000")
	if r.Nodes < 100000 {
		b.Fatalf("megafleet ran on %d nodes, want ≥ 100000", r.Nodes)
	}
	if r.Metrics["faults_injected"] == 0 {
		b.Fatal("no faults injected at scale")
	}
	if total := r.BuildWallTime + r.WallTime; total > budget {
		b.Fatalf("scale gate blew its wall-time budget: built in %v + ran in %v > %v",
			r.BuildWallTime.Round(time.Millisecond), r.WallTime.Round(time.Millisecond), budget)
	}
	b.ReportMetric(r.BuildWallTime.Seconds(), "build-s")
	b.ReportMetric(float64(r.Nodes), "nodes")
}

// BenchmarkScenarioMegafleet100000Sharded re-runs the 10⁵-node scale
// gate with the pod-sharded conservative-parallel advance on (auto
// shard count — one shard per rack group up to GOMAXPROCS — staged by
// 4 workers): the serial-vs-sharded events/s comparison CI tracks
// next to BenchmarkScenarioMegafleet100000, under the same wall-time
// budget. Bit-equality of the two arms is proved by the determinism
// gates (TestShardedAdvanceMatchesSerial and the bench-json digest
// cross-check), so this benchmark only tracks the throughput side.
func BenchmarkScenarioMegafleet100000Sharded(b *testing.B) {
	budget := megafleet100kBudget
	if s := os.Getenv("MEGAFLEET100K_BUDGET"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			b.Fatalf("bad MEGAFLEET100K_BUDGET %q: %v", s, err)
		}
		budget = d
	}
	var last *scenario.Report
	for i := 0; i < b.N; i++ {
		spec, err := scenario.Catalog("megafleet-100000")
		if err != nil {
			b.Fatal(err)
		}
		spec.Cloud.Kernel.ShardedAdvance = true
		spec.Cloud.Kernel.ShardWorkers = 4
		rep, err := scenario.Execute(spec)
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	if last.Nodes < 100000 {
		b.Fatalf("megafleet ran on %d nodes, want ≥ 100000", last.Nodes)
	}
	if total := last.BuildWallTime + last.WallTime; total > budget {
		b.Fatalf("sharded scale gate blew its wall-time budget: built in %v + ran in %v > %v",
			last.BuildWallTime.Round(time.Millisecond), last.WallTime.Round(time.Millisecond), budget)
	}
	b.ReportMetric(last.SimTime.Seconds()/last.WallTime.Seconds(), "sim-s/wall-s")
	b.ReportMetric(float64(last.EventsFired)/last.WallTime.Seconds(), "events/s")
	b.ReportMetric(float64(last.Nodes), "nodes")
}

// BenchmarkScenarioMegafleetFattree1000 runs the k=16 fat-tree
// megafleet: 1024 nodes, gravity-heavy cross-pod load, churn, and an
// edge-uplink outage. Every cross-pod cold route must be answered by
// the structured synthesis — the LinkFail prunes ECMP fans but never
// leaves the provable two-tier shape, so fallbacks stay at zero here
// too.
func BenchmarkScenarioMegafleetFattree1000(b *testing.B) {
	r := runScenario(b, "megafleet-fattree-1000")
	if r.Nodes < 1000 {
		b.Fatalf("fat-tree megafleet ran on %d nodes, want ≥ 1000", r.Nodes)
	}
	if r.Metrics["route_synth_hits"] == 0 {
		b.Fatal("route synthesis never engaged on the fat-tree")
	}
	if fb := r.Metrics["dijkstra_fallbacks"]; fb != 0 {
		b.Fatalf("%v Dijkstra fallbacks on the k=16 fat-tree", fb)
	}
	b.ReportMetric(float64(r.Nodes), "nodes")
}

// megafleetFattree100kBudget is the wall-time budget of the 10⁵-node
// fat-tree scale gate. The k=74 fabric wires ~104k cables across three
// switch tiers, so construction dominates; the budget mirrors the
// multi-root 100k gate's headroom policy. Override with
// MEGAFLEET_FATTREE100K_BUDGET (a Go duration) when qualifying slower
// hardware.
const megafleetFattree100kBudget = 4 * time.Minute

func fattree100kBudget(b *testing.B) time.Duration {
	b.Helper()
	budget := megafleetFattree100kBudget
	if s := os.Getenv("MEGAFLEET_FATTREE100K_BUDGET"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			b.Fatalf("bad MEGAFLEET_FATTREE100K_BUDGET %q: %v", s, err)
		}
		budget = d
	}
	return budget
}

// BenchmarkScenarioMegafleetFattree100000 is the PR 10 scale gate for
// cross-pod route synthesis: 101,306 nodes in a k=74 fat-tree where
// the gravity mix makes almost every cold route cross-pod. All links
// stay up, so a single Dijkstra fallback means the synthesis failed to
// cover a provable shape — at this scale one fallback settles the
// whole 100k-node fabric, which is exactly the cost the synthesis
// exists to avoid. The gate therefore requires zero fallbacks, not
// just a fast run.
func BenchmarkScenarioMegafleetFattree100000(b *testing.B) {
	budget := fattree100kBudget(b)
	r := runScenario(b, "megafleet-fattree-100000")
	if r.Nodes < 100000 {
		b.Fatalf("fat-tree megafleet ran on %d nodes, want ≥ 100000", r.Nodes)
	}
	if r.Metrics["route_synth_hits"] == 0 {
		b.Fatal("route synthesis never engaged on the fat-tree")
	}
	if fb := r.Metrics["dijkstra_fallbacks"]; fb != 0 {
		b.Fatalf("%v Dijkstra fallbacks on an all-links-up fat-tree; cross-pod synthesis must cover every pair", fb)
	}
	if total := r.BuildWallTime + r.WallTime; total > budget {
		b.Fatalf("fat-tree scale gate blew its wall-time budget: built in %v + ran in %v > %v",
			r.BuildWallTime.Round(time.Millisecond), r.WallTime.Round(time.Millisecond), budget)
	}
	b.ReportMetric(r.BuildWallTime.Seconds(), "build-s")
	b.ReportMetric(float64(r.Nodes), "nodes")
}

// BenchmarkScenarioMegafleetFattree100000Sharded re-runs the fat-tree
// scale gate with the pod-sharded advance (racks are pods, so shards
// align with fat-tree pods and every cross-shard message is core-tier
// cross-pod traffic). Bit-equality with the serial arm is proved by
// TestFatTreeCrossPodShardedAdvanceMatchesSerial and the bench-json
// digest cross-check; this benchmark tracks the throughput side.
func BenchmarkScenarioMegafleetFattree100000Sharded(b *testing.B) {
	budget := fattree100kBudget(b)
	var last *scenario.Report
	for i := 0; i < b.N; i++ {
		spec, err := scenario.Catalog("megafleet-fattree-100000")
		if err != nil {
			b.Fatal(err)
		}
		spec.Cloud.Kernel.ShardedAdvance = true
		spec.Cloud.Kernel.ShardWorkers = 4
		rep, err := scenario.Execute(spec)
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	if last.Nodes < 100000 {
		b.Fatalf("fat-tree megafleet ran on %d nodes, want ≥ 100000", last.Nodes)
	}
	if fb := last.Metrics["dijkstra_fallbacks"]; fb != 0 {
		b.Fatalf("%v Dijkstra fallbacks on an all-links-up fat-tree", fb)
	}
	if total := last.BuildWallTime + last.WallTime; total > budget {
		b.Fatalf("sharded fat-tree scale gate blew its wall-time budget: built in %v + ran in %v > %v",
			last.BuildWallTime.Round(time.Millisecond), last.WallTime.Round(time.Millisecond), budget)
	}
	b.ReportMetric(last.SimTime.Seconds()/last.WallTime.Seconds(), "sim-s/wall-s")
	b.ReportMetric(float64(last.EventsFired)/last.WallTime.Seconds(), "events/s")
	b.ReportMetric(float64(last.Nodes), "nodes")
}

// megafleet1MBudget is the wall-time budget of the 10⁶-node scale
// gate: construction plus the full fault-and-traffic timeline. A
// single-core reference box builds the 1,000,192-node fleet in ~50 s
// and runs the 20 s timeline in well under a second (lazy accounting,
// parallel solving, hierarchical meters, synthesised routes); ten
// minutes leaves slow shared CI runners an order of magnitude of
// headroom while still catching a regression of the run phase back to
// whole-fleet-per-instant costs. Override with MEGAFLEET1M_BUDGET.
const megafleet1MBudget = 10 * time.Minute

// BenchmarkScenarioMegafleet1000000 is the PR 4 scale gate for the
// run-phase kernel: a million-plus simulated nodes (256 racks × 3907,
// the /20 addressing plan's territory) boot through the fleet builder,
// then survive node churn and a fabric brownout under background
// traffic — inside a hard wall-time budget covering build and run.
func BenchmarkScenarioMegafleet1000000(b *testing.B) {
	budget := megafleet1MBudget
	if s := os.Getenv("MEGAFLEET1M_BUDGET"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			b.Fatalf("bad MEGAFLEET1M_BUDGET %q: %v", s, err)
		}
		budget = d
	}
	r := runScenario(b, "megafleet-1000000")
	if r.Nodes < 1000000 {
		b.Fatalf("megafleet ran on %d nodes, want ≥ 1,000,000", r.Nodes)
	}
	if r.Metrics["faults_injected"] == 0 {
		b.Fatal("no faults injected at scale")
	}
	if r.Metrics["route_synth_hits"] == 0 {
		b.Fatal("structured route synthesis never engaged at scale")
	}
	if total := r.BuildWallTime + r.WallTime; total > budget {
		b.Fatalf("scale gate blew its wall-time budget: built in %v + ran in %v > %v",
			r.BuildWallTime.Round(time.Millisecond), r.WallTime.Round(time.Millisecond), budget)
	}
	b.ReportMetric(r.BuildWallTime.Seconds(), "build-s")
	b.ReportMetric(r.WallTime.Seconds(), "run-s")
	b.ReportMetric(float64(r.Nodes), "nodes")
}
